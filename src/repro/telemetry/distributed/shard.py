"""Hash-partitioned sharded store: the distributed archive tier.

A :class:`ShardedStore` spreads series across N independent
:class:`~repro.telemetry.store.TimeSeriesStore` shards by hashing the
series name (pluggable partitioner, CRC-32 by default so assignment is
consistent across runs and archives).  Each shard slot is a
:class:`~repro.telemetry.distributed.replica.ReplicaSet` — primary plus R
replicas with transparent read failover — and cross-shard reads go through
the :class:`~repro.telemetry.distributed.federation.FederatedQueryEngine`.

The public surface is API-compatible with ``TimeSeriesStore`` (``ingest``,
``query``, ``resample``, ``align``, ``select``, ``names``, ``flush``,
``health_metrics``, …), so everything downstream — bus subscription,
streaming stages, alert evaluation, analytics, persistence — works
unchanged on a sharded deployment::

    store = ShardedStore(shards=8, replication=1, retention=86_400.0)
    bus.subscribe("#", store.ingest)
    grid, X = store.align(store.select("cluster.*"), 0.0, now, 60.0)

Ingest splits each bus batch into per-shard sub-batches with a cached
split plan: scrapes re-publish the same metric-name tuple every period, so
after the first batch the partitioner is never consulted again on the hot
path — one dict hit yields the (shard, names, index-array) plan and the
values are fancy-indexed straight into per-shard batches.
"""

from __future__ import annotations

import os
import shutil
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import OBS as _OBS
from repro.obs.metrics import MetricsRegistry
from repro.telemetry.distributed.federation import FederatedQueryEngine
from repro.telemetry.distributed.partition import HashPartitioner, Partitioner
from repro.telemetry.distributed.replica import ReplicaSet
from repro.telemetry.durability import JournalConfig
from repro.telemetry.sample import SampleBatch
from repro.telemetry.store import SeriesBuffer, TimeSeriesStore

__all__ = ["ShardedStore"]

#: Bound on the cached batch split plans (keyed by the batch's name tuple).
_SPLIT_CACHE_CAP = 1024

#: One split-plan entry: (shard_id, names sub-tuple, value index array).
_SplitPlan = List[Tuple[int, Tuple[str, ...], np.ndarray]]


def _config_dict(value, kind: str):
    """Normalize a rollups/archive knob to a picklable form (None, True,
    or a plain dict) so it can ship to shard worker processes."""
    if not value:
        return None
    if value is True:
        return True
    if isinstance(value, dict):
        return dict(value)
    to_dict = getattr(value, "to_dict", None)
    if to_dict is None:
        raise ConfigurationError(
            f"{kind} must be a bool, a dict, or a config object with "
            f"to_dict(), got {type(value).__name__}"
        )
    return to_dict()


def _journal_dict(value) -> Optional[dict]:
    """Normalize the journal knob to ``{"base_dir": ..., **tuning}``.

    Accepts a directory path, a :class:`JournalConfig` (its ``dir`` becomes
    the base directory), or a dict with a ``dir`` key plus tuning fields —
    all picklable, so the config ships to shard worker processes as-is.
    """
    if not value:
        return None
    if isinstance(value, JournalConfig):
        d = {
            "base_dir": value.dir,
            "segment_max_bytes": value.segment_max_bytes,
            "sync": value.sync,
            "sync_interval_s": value.sync_interval_s,
            "group_bytes": value.group_bytes,
        }
        return d
    if isinstance(value, dict):
        d = dict(value)
        if "base_dir" not in d:
            if "dir" not in d:
                raise ConfigurationError(
                    "journal dict needs a 'dir' (base directory) key"
                )
            d["base_dir"] = d.pop("dir")
        return d
    return {"base_dir": os.fspath(value)}


def member_journal_config(journal: dict, shard: int, member: int) -> JournalConfig:
    """The per-member WAL config under a deployment's journal base dir.

    Deterministic layout (``<base>/shard<i>/member<j>``) is what makes
    crash recovery work: a rebuilt deployment opens the same directories
    its predecessor journaled into and replays them.
    """
    kwargs = {k: v for k, v in journal.items() if k != "base_dir"}
    return JournalConfig(
        dir=os.path.join(journal["base_dir"], f"shard{shard}", f"member{member}"),
        **kwargs,
    )


class _MemberFactory:
    """Per-shard member builder, optionally journaling each member.

    ``per_member`` advertises the ``(member=i)`` calling convention to
    :class:`ReplicaSet`, which pins each member to a stable journal
    directory.  ``fresh`` is the resync path: a member rebuilt from a
    healthy peer starts from an *empty* journal (the peer copy re-journals
    everything it receives), so the stale pre-failure journal is wiped
    rather than replayed on the next open.
    """

    per_member = True

    def __init__(self, store_kwargs: dict, journal: Optional[dict], shard_id: int):
        self._kwargs = store_kwargs
        self._journal = journal
        self._shard = shard_id

    def __call__(self, member: Optional[int] = None) -> TimeSeriesStore:
        if self._journal is None or member is None:
            return TimeSeriesStore(**self._kwargs)
        return TimeSeriesStore(
            **self._kwargs,
            journal=member_journal_config(self._journal, self._shard, member),
        )

    def fresh(self, member: int) -> TimeSeriesStore:
        if self._journal is not None:
            cfg = member_journal_config(self._journal, self._shard, member)
            shutil.rmtree(cfg.dir, ignore_errors=True)
        return self(member)


class ShardedStore:
    """N hash-partitioned, optionally replicated, time-series shards.

    Parameters
    ----------
    shards:
        Number of shard slots (>= 1).
    replication:
        Extra copies per shard: every write lands on the primary plus this
        many replicas, and reads fail over when the primary is down.
    partitioner:
        ``name -> shard_id`` callable; defaults to CRC-32 hashing
        (:class:`~repro.telemetry.distributed.partition.HashPartitioner`).
    retention / retention_slack / flush_threshold:
        Per-shard store configuration, identical in meaning to
        :class:`~repro.telemetry.store.TimeSeriesStore`.
    store_factory:
        Override how member stores are built (e.g. to pass a custom store
        subclass); when given, the three config knobs above are only
        recorded for introspection, not applied.  Incompatible with
        ``parallel`` (worker processes rebuild stores from configuration,
        not from an arbitrary closure).
    parallel:
        Run each replica set in its own worker process, fed by
        shared-memory ring buffers with async batched ingest
        (:mod:`repro.telemetry.runtime`).  The store API is unchanged and
        federated query results are bit-identical to the in-process path;
        call :meth:`close` (or use the owning system's ``close``) for a
        graceful drain at shutdown.
    parallel_config:
        Optional :class:`~repro.telemetry.runtime.RuntimeConfig` tuning
        ring sizes, backpressure timeout and durability.
    rollups / archive:
        Per-member rollup cascade / compressed cold tier, identical in
        meaning to :class:`~repro.telemetry.store.TimeSeriesStore`.
        Accepted in bool/dict/config form; in parallel mode the config is
        normalized to a picklable dict and rebuilt inside each worker.
    journal:
        Enable per-member write-ahead journaling under a base directory
        (pass the directory, a :class:`~repro.telemetry.durability.JournalConfig`
        whose ``dir`` is the base, or a dict with ``dir`` + tuning keys).
        Each member journals to ``<base>/shard<i>/member<j>``; opening a
        new ``ShardedStore`` over the same base replays the journals, so
        acked ingest survives a crash of the owning process.  In parallel
        mode the workers journal on their side of the ring and a restarted
        worker recovers its un-flushed window from the journal.
    """

    def __init__(
        self,
        shards: int = 4,
        replication: int = 0,
        partitioner: Optional[Partitioner] = None,
        retention: Optional[float] = None,
        retention_slack: float = 0.25,
        flush_threshold: int = 256,
        store_factory: Optional[Callable[[], TimeSeriesStore]] = None,
        parallel: bool = False,
        parallel_config=None,
        rollups=None,
        archive=None,
        journal=None,
    ):
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if replication < 0:
            raise ConfigurationError(
                f"replication must be >= 0, got {replication}"
            )
        self.shards = shards
        self.replication = replication
        self.retention = retention
        self.retention_slack = retention_slack
        self.flush_threshold = flush_threshold
        self.rollups = rollups
        self.archive = archive
        self.parallel = parallel
        self.runtime = None
        self.journal = _journal_dict(journal)
        self.corrupt_artifacts = 0  # damaged artifacts degraded at load
        if store_factory is None:
            member_factories: Optional[List[_MemberFactory]] = [
                _MemberFactory(
                    {
                        "retention": retention,
                        "retention_slack": retention_slack,
                        "flush_threshold": flush_threshold,
                        "rollups": rollups,
                        "archive": archive,
                    },
                    self.journal,
                    i,
                )
                for i in range(shards)
            ]
        elif parallel:
            raise ConfigurationError(
                "parallel=True cannot ship a custom store_factory to worker "
                "processes; configure stores via retention/flush knobs"
            )
        elif self.journal is not None:
            raise ConfigurationError(
                "journal cannot be combined with a custom store_factory; "
                "configure member stores via the journal knob alone"
            )
        else:
            member_factories = None
        self.partitioner: Partitioner = (
            partitioner if partitioner is not None else HashPartitioner(shards)
        )
        if parallel:
            from repro.telemetry.runtime import (
                ParallelShardRuntime,
                RuntimeConfig,
            )

            if self.journal is not None:
                # Journaling in parallel mode means worker-side WALs: the
                # workers own the stores, so they must own the durability.
                if parallel_config is None:
                    parallel_config = RuntimeConfig(durability="wal")
                elif parallel_config.durability == "none":
                    parallel_config.durability = "wal"
            self.runtime = ParallelShardRuntime(
                shards,
                replication,
                store_config={
                    "retention": retention,
                    "retention_slack": retention_slack,
                    "flush_threshold": flush_threshold,
                    "rollups": _config_dict(rollups, "rollups"),
                    "archive": _config_dict(archive, "archive"),
                    "journal": self.journal,
                },
                config=parallel_config,
            )
            self.replica_sets = self.runtime.replica_sets
        else:
            self.replica_sets: List[ReplicaSet] = [
                ReplicaSet(
                    i,
                    replication,
                    member_factories[i] if member_factories is not None
                    else store_factory,
                )
                for i in range(shards)
            ]
        self.federation = FederatedQueryEngine(self)
        self.batches_ingested = 0
        self._route: Dict[str, int] = {}
        self._split_cache: "OrderedDict[Tuple[str, ...], _SplitPlan]" = (
            OrderedDict()
        )
        self._metrics: Optional[MetricsRegistry] = None

    # ------------------------------------------------------------------
    # Configuration introspection
    # ------------------------------------------------------------------
    @property
    def rollup_config(self):
        """Normalized :class:`~repro.telemetry.rollup.RollupConfig` (or
        ``None``) regardless of the bool/dict/config form passed in."""
        from repro.telemetry.rollup import RollupConfig

        val = _config_dict(self.rollups, "rollups")
        if val is None:
            return None
        return RollupConfig() if val is True else RollupConfig.from_dict(val)

    @property
    def archive_config(self):
        """Normalized :class:`~repro.telemetry.archive.ArchiveConfig` (or
        ``None``) regardless of the bool/dict/config form passed in."""
        from repro.telemetry.archive import ArchiveConfig

        val = _config_dict(self.archive, "archive")
        if val is None:
            return None
        return ArchiveConfig() if val is True else ArchiveConfig.from_dict(val)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of(self, name: str) -> int:
        """Shard id owning ``name`` (cached, consistent for the run)."""
        shard = self._route.get(name)
        if shard is None:
            shard = self._route[name] = int(self.partitioner(name)) % self.shards
            if not 0 <= shard < self.shards:  # custom partitioner misbehaving
                raise ConfigurationError(
                    f"partitioner returned shard {shard} for {name!r} "
                    f"(valid: 0..{self.shards - 1})"
                )
        return shard

    def store_for(self, name: str) -> TimeSeriesStore:
        """The store currently serving reads for ``name``'s shard."""
        return self.replica_sets[self.shard_of(name)].read_store()

    def _split_plan(self, names: Tuple[str, ...]) -> _SplitPlan:
        plan = self._split_cache.get(names)
        if plan is None:
            by_shard: Dict[int, List[int]] = {}
            for i, name in enumerate(names):
                by_shard.setdefault(self.shard_of(name), []).append(i)
            plan = [
                (
                    shard,
                    tuple(names[i] for i in idx),
                    np.asarray(idx, dtype=np.intp),
                )
                for shard, idx in sorted(by_shard.items())
            ]
            if len(self._split_cache) >= _SPLIT_CACHE_CAP:
                # LRU: evict only the coldest entry.  A wholesale clear()
                # here forced every live scrape shape to re-consult the
                # partitioner on its next batch — a periodic latency spike.
                self._split_cache.popitem(last=False)
            self._split_cache[names] = plan
        else:
            self._split_cache.move_to_end(names)
        return plan

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, topic: str, batch: SampleBatch) -> None:
        """Bus-compatible sink: split the batch and write each sub-batch to
        its shard's replica set (primary + replicas)."""
        if _OBS.enabled:
            with _OBS.tracer.span(
                "shard.ingest", sim_time=batch.time, samples=len(batch)
            ):
                self._ingest(topic, batch)
            return
        self._ingest(topic, batch)

    def _ingest(self, topic: str, batch: SampleBatch) -> None:
        self.batches_ingested += 1
        plan = self._split_plan(batch.names)
        if len(plan) == 1:
            # Whole batch lands on one shard: forward it as-is, no copies.
            self.replica_sets[plan[0][0]].ingest(topic, batch)
            return
        time = batch.time
        values = batch.values
        for shard, names, idx in plan:
            self.replica_sets[shard].ingest(
                topic, SampleBatch(time, names, values[idx])
            )

    def append(self, name: str, time: float, value: float) -> None:
        self.replica_sets[self.shard_of(name)].append(name, time, value)

    def append_many(
        self, name: str, times: np.ndarray, values: np.ndarray
    ) -> None:
        self.replica_sets[self.shard_of(name)].append_many(name, times, values)

    def flush(self, name: Optional[str] = None) -> int:
        """Flush staged samples on every shard member; returns samples
        flushed on the primaries-and-replicas of the touched shard(s)."""
        if name is not None:
            rs = self.replica_sets[self.shard_of(name)]
            return sum(
                store.flush(name)
                for i, store in enumerate(rs.members)
                if not rs.is_down(i)
            )
        return sum(rs.flush() for rs in self.replica_sets)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def anti_entropy(
        self, window_s: float = 3600.0, now: Optional[float] = None
    ) -> Dict[str, int]:
        """One anti-entropy sweep over every shard's replica set.

        Detects primary/replica divergence via per-(series, window)
        checksums and repairs only the differing windows; see
        :meth:`ReplicaSet.anti_entropy`.  In parallel mode the sweep runs
        inside each shard worker (the data never crosses the process
        boundary).  Returns the aggregated sweep summary.
        """
        totals = {
            "diverged_windows": 0,
            "repaired_windows": 0,
            "repaired_samples": 0,
            "checked_series": 0,
        }
        for rs in self.replica_sets:
            result = rs.anti_entropy(window_s, now)
            for key in totals:
                totals[key] += int(result.get(key, 0))
        return totals

    def sync_journal(self) -> int:
        """Group-commit every journal (fsync); returns max durable seq.

        In-process deployments sync each member's journal; parallel
        deployments sync the per-shard worker WALs.
        """
        seq = 0
        if self.runtime is not None:
            for shard in range(self.shards):
                seq = max(
                    seq, int(self.runtime._call(shard, "sync_journal", ()))
                )
            return seq
        for rs in self.replica_sets:
            for i, member in enumerate(rs.members):
                if not rs.is_down(i) and hasattr(member, "sync_journal"):
                    seq = max(seq, member.sync_journal())
        return seq

    @property
    def recovered_samples(self) -> int:
        """Samples replayed from journals when this store (or its current
        worker incarnations) opened."""
        if self.runtime is not None:
            return sum(
                int(self.runtime.shard_stats(s).get("recovered_samples", 0))
                for s in range(self.shards)
            )
        total = 0
        for rs in self.replica_sets:
            for member in rs.members:
                recovery = getattr(member, "recovery", None)
                if recovery is not None:
                    total += recovery.replayed_samples
        return total

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return self.federation.names()

    def select(self, pattern: str) -> List[str]:
        return self.federation.select(pattern)

    def __contains__(self, name: str) -> bool:
        return name in self.store_for(name)

    def __len__(self) -> int:
        return sum(len(rs.read_store()) for rs in self.replica_sets)

    def series(self, name: str) -> SeriesBuffer:
        """Read accessor on the owning shard (flushes + enforces retention)."""
        return self.store_for(name).series(name)

    @property
    def latest_time(self) -> float:
        """Largest timestamp across all serving members (-inf when empty)."""
        return max(
            (rs.read_store().latest_time for rs in self.replica_sets),
            default=float("-inf"),
        )

    @property
    def samples_ingested(self) -> int:
        """Logical samples stored (per-shard, counted once per sample —
        replica copies are not double-counted)."""
        return sum(rs.read_store().samples_ingested for rs in self.replica_sets)

    @property
    def staged_samples(self) -> int:
        return sum(rs.read_store().staged_samples for rs in self.replica_sets)

    @property
    def metrics(self) -> MetricsRegistry:
        """Typed aggregate instruments on the ``telemetry.shard.*`` subtree."""
        if self._metrics is None:
            r = MetricsRegistry()
            r.gauge("telemetry.shard.count", "configured shard slots",
                    fn=lambda: float(self.shards))
            r.gauge("telemetry.shard.replication", "replica copies per shard",
                    fn=lambda: float(self.replication))
            r.counter("telemetry.shard.batches", "bus batches ingested",
                      fn=lambda: float(self.batches_ingested))
            r.counter("telemetry.shard.fanouts", "federated cross-shard reads",
                      fn=lambda: float(self.federation.fanouts))
            r.gauge("telemetry.shard.down_members",
                    "members currently down across all shards",
                    fn=lambda: float(
                        sum(rs.down_members for rs in self.replica_sets)
                    ))
            r.counter("telemetry.shard.failover_reads",
                      "reads served by a non-primary across all shards",
                      fn=lambda: float(
                          sum(rs.failover_reads for rs in self.replica_sets)
                      ))
            r.counter("telemetry.shard.lost_samples",
                      "samples lost with a whole shard down",
                      fn=lambda: float(
                          sum(rs.lost_samples for rs in self.replica_sets)
                      ))
            r.counter("telemetry.shard.resync_failed",
                      "revivals that found no healthy peer to resync from",
                      fn=lambda: float(
                          sum(rs.resync_failures for rs in self.replica_sets)
                      ))
            r.counter("telemetry.replica.diverged_windows",
                      "divergent (series, window) pairs detected",
                      fn=lambda: float(
                          sum(rs.diverged_windows for rs in self.replica_sets)
                      ))
            r.counter("telemetry.replica.repaired_windows",
                      "divergent windows repaired by anti-entropy",
                      fn=lambda: float(
                          sum(rs.repaired_windows for rs in self.replica_sets)
                      ))
            r.counter("telemetry.replica.repaired_samples",
                      "samples copied to members by anti-entropy",
                      fn=lambda: float(
                          sum(sum(rs.repaired_samples) for rs in self.replica_sets)
                      ))
            r.counter("telemetry.durability.corrupt_artifacts",
                      "damaged persisted artifacts degraded at load",
                      fn=lambda: float(self.corrupt_artifacts))
            self._metrics = r
        return self._metrics

    def metric_registries(self) -> List[MetricsRegistry]:
        """Aggregate registry plus one per replica set (for exporters);
        a parallel deployment adds the ``telemetry.runtime.*`` registry."""
        registries = [self.metrics] + [
            rs.metrics_registry(f"telemetry.shard.{rs.shard_id}")
            for rs in self.replica_sets
        ]
        if self.runtime is not None:
            registries.append(self.runtime.metrics)
        return registries

    # ------------------------------------------------------------------
    # Lifecycle (parallel mode)
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Gracefully drain and stop shard workers; in-process deployments
        flush member staging and cleanly close member journals."""
        if self.runtime is not None:
            self.runtime.close()
            return
        for rs in self.replica_sets:
            for i, member in enumerate(rs.members):
                if not rs.is_down(i) and hasattr(member, "close"):
                    member.close()

    def health_metrics(self) -> Dict[str, float]:
        """Self-metrics on the ``telemetry.shard.*`` subtree.

        Published by the :class:`~repro.telemetry.health.HealthMonitor`
        like any store's, so shard failures are visible — and alertable —
        through the ordinary pipeline.  A thin dict view over
        :meth:`metrics` plus the per-shard registries, preserving the
        historical key order (aggregates bracket the per-shard entries).
        """
        agg = self.metrics.snapshot()
        out: Dict[str, float] = {
            k: agg[k]
            for k in (
                "telemetry.shard.count",
                "telemetry.shard.replication",
                "telemetry.shard.batches",
                "telemetry.shard.fanouts",
            )
        }
        for rs in self.replica_sets:
            out.update(rs.health_metrics(f"telemetry.shard.{rs.shard_id}"))
        for k in (
            "telemetry.shard.down_members",
            "telemetry.shard.failover_reads",
            "telemetry.shard.lost_samples",
            "telemetry.shard.resync_failed",
            "telemetry.replica.diverged_windows",
            "telemetry.replica.repaired_windows",
            "telemetry.replica.repaired_samples",
            "telemetry.durability.corrupt_artifacts",
        ):
            out[k] = agg[k]
        if self.runtime is not None:
            out.update(self.runtime.health_metrics())
        return out

    # ------------------------------------------------------------------
    # Queries (single-series routed, cross-series federated)
    # ------------------------------------------------------------------
    def query(
        self, name: str, since: float = float("-inf"), until: float = float("inf")
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.federation.query(name, since, until)

    def latest(self, name: str) -> Tuple[float, float]:
        return self.store_for(name).latest(name)

    def value_at(self, name: str, time: float) -> float:
        return self.store_for(name).value_at(name, time)

    def resample(
        self,
        name: str,
        since: float,
        until: float,
        step: float,
        agg: str = "mean",
        engine: str = "auto",
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.federation.resample(
            name, since, until, step, agg=agg, engine=engine
        )

    def align(
        self,
        names: Sequence[str],
        since: float,
        until: float,
        step: float,
        agg: str = "mean",
        fill: str = "ffill",
        engine: str = "auto",
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.federation.align(
            names, since, until, step, agg=agg, fill=fill, engine=engine
        )
