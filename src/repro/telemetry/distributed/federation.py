"""Federated queries over a sharded store.

The single query front-end of a distributed monitoring deployment (DCDB's
libdcdb fanning a query out over per-node storage backends): callers ask
for series by name or pattern and never see which shard holds what.

Partitioning is by series name, so a single-series read routes straight to
the owning shard and runs that shard's own fast path.  The federated part
is everything spanning shards:

* ``names``/``select`` — k-way merge of the shards' sorted name lists
  (disjoint by construction, so the merge is a plain heapq merge),
* ``align`` — the bucket-edge grid is computed **once** and shared across
  every series exactly as in
  :meth:`~repro.telemetry.store.TimeSeriesStore.align`, with each column
  produced by the shared :func:`~repro.telemetry.store.resample_onto`
  reduceat kernels on data fetched from the owning shard.  Because the
  federated path and the single-store path execute the same kernel on the
  same per-series samples, results are bit-for-bit identical.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import StoreError
from repro.obs import OBS as _OBS
from repro.telemetry.store import (
    bucket_edges,
    check_resample_args,
    forward_fill,
    resample_onto,
)

__all__ = ["FederatedQueryEngine"]


class FederatedQueryEngine:
    """Fans queries out across a :class:`ShardedStore`'s shards and merges.

    Constructed by (and accessible as) ``ShardedStore.federation``; the
    store delegates its cross-shard read API here.
    """

    def __init__(self, sharded):
        self._sharded = sharded
        self.fanouts = 0

    def _pinned_store(self) -> Callable:
        """A per-query resolver that fixes each shard's serving member.

        Fan-outs used to call ``read_store()`` once per shard *per leg*, so
        a primary dying mid-fan-out could mix its view with a stale
        replica's in one merged result.  Every fan-out now resolves each
        involved shard exactly once, up front on first touch, and reuses
        that member for all of the query's legs — the merged result is one
        self-consistent snapshot.  (Resolution stays lazy per shard so a
        fully-down shard that the query never touches cannot fail it.)
        """
        stores: Dict[int, object] = {}
        replica_sets = self._sharded.replica_sets

        def store_of(shard: int):
            store = stores.get(shard)
            if store is None:
                store = stores[shard] = replica_sets[shard].read_store()
            return store

        return store_of

    # ------------------------------------------------------------------
    # Catalog queries: merge per-shard sorted name lists
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """All series names across shards, sorted."""
        if _OBS.enabled:
            with _OBS.tracer.span(
                "federation.names", shards=self._sharded.shards
            ):
                return self._names()
        return self._names()

    def _names(self) -> List[str]:
        self.fanouts += 1
        store_of = self._pinned_store()
        per_shard = [
            store_of(shard).names()
            for shard in range(self._sharded.shards)
        ]
        return list(heapq.merge(*per_shard))

    def select(self, pattern: str) -> List[str]:
        """Names matching a shell-style pattern, across all shards."""
        if _OBS.enabled:
            with _OBS.tracer.span("federation.select", pattern=pattern):
                return self._select(pattern)
        return self._select(pattern)

    def _select(self, pattern: str) -> List[str]:
        self.fanouts += 1
        store_of = self._pinned_store()
        per_shard = [
            store_of(shard).select(pattern)
            for shard in range(self._sharded.shards)
        ]
        return list(heapq.merge(*per_shard))

    # ------------------------------------------------------------------
    # Data queries
    # ------------------------------------------------------------------
    def query(
        self, name: str, since: float = float("-inf"), until: float = float("inf")
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Route a raw range query to the shard owning ``name``."""
        if _OBS.enabled:
            with _OBS.tracer.span("federation.query", metric=name):
                return self._sharded.store_for(name).query(name, since, until)
        return self._sharded.store_for(name).query(name, since, until)

    def resample(
        self,
        name: str,
        since: float,
        until: float,
        step: float,
        agg: str = "mean",
        engine: str = "auto",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Single-series resample on the owning shard (keeps its fast path)."""
        return self._sharded.store_for(name).resample(
            name, since, until, step, agg=agg, engine=engine
        )

    def align(
        self,
        names: Sequence[str],
        since: float,
        until: float,
        step: float,
        agg: str = "mean",
        fill: str = "ffill",
        engine: str = "auto",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Cross-shard alignment onto one shared grid.

        Mirrors :meth:`TimeSeriesStore.align` — same argument validation,
        one shared bucket-edge grid, same vectorized kernels — but fetches
        each series from its owning shard, so the result is bit-for-bit
        what a single store holding every series would return.
        """
        if _OBS.enabled:
            with _OBS.tracer.span(
                "federation.align", series=len(names), agg=agg
            ):
                return self._align(
                    names, since, until, step, agg=agg, fill=fill,
                    engine=engine,
                )
        return self._align(
            names, since, until, step, agg=agg, fill=fill, engine=engine
        )

    def _align(
        self,
        names: Sequence[str],
        since: float,
        until: float,
        step: float,
        agg: str = "mean",
        fill: str = "ffill",
        engine: str = "auto",
    ) -> Tuple[np.ndarray, np.ndarray]:
        if fill not in ("ffill", "nan"):
            raise StoreError(f"unknown fill mode {fill!r}")
        check_resample_args(step, agg, engine)
        if until <= since or not names:
            return np.empty(0), np.empty((0, len(names)))
        self.fanouts += 1
        store_of = self._pinned_store()
        shard_of = self._sharded.shard_of
        edges = bucket_edges(since, until, step)
        grid = edges[:-1]
        columns = []
        for name in names:
            store = store_of(shard_of(name))
            column = getattr(store, "resample_column", None)
            if column is not None:
                # Planner-aware member (rollup tiers serve eligible
                # buckets; raw/cold reduction otherwise — same bits).
                v = column(name, since, until, step, agg, engine, edges)
            else:
                times, values = store.query(name, since, until)
                v = resample_onto(times, values, edges, agg, engine)
            if fill == "ffill":
                v = forward_fill(v)
            columns.append(v)
        return grid, np.column_stack(columns)
