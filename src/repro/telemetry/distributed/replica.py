"""Replica sets: one storage shard as primary + R replicas with failover.

Production monitoring backends replicate each partition so a dead backend
node degrades capacity, not availability ("ODA in Practice": the storage
tier must stay queryable through maintenance and failures).  A
:class:`ReplicaSet` is that unit: ``replication + 1`` independent
:class:`~repro.telemetry.store.TimeSeriesStore` members that all receive
every write, with reads served by the primary and transparently failed
over to the first healthy replica when the primary is marked down.

Failure semantics mirror real collectors:

* **writes never raise** — a down member simply misses the write (counted
  in ``missed_writes``); if *every* member is down the batch is lost and
  counted (``lost_batches``/``lost_samples``), exactly like a monitoring
  stack dropping data while its backend is offline,
* **reads fail over** — served by the first healthy member in primary →
  replica order (``failover_reads`` counts reads served by a non-primary);
  only when no healthy member remains does a read raise
  :class:`~repro.errors.ShardDownError`,
* **revival resyncs** — a revived member missed writes while down, so by
  default it is rebuilt from a healthy peer before serving again.
"""

from __future__ import annotations

import logging
from typing import Callable, List, Optional

import numpy as np

from repro.errors import ConfigurationError, ShardDownError
from repro.obs import OBS as _OBS
from repro.obs.metrics import MetricsRegistry
from repro.telemetry.sample import SampleBatch
from repro.telemetry.store import TimeSeriesStore

__all__ = ["ReplicaSet"]

log = logging.getLogger(__name__)

StoreFactory = Callable[[], TimeSeriesStore]


class ReplicaSet:
    """Primary + R replica stores for one shard, with read failover."""

    def __init__(
        self,
        shard_id: int,
        replication: int = 0,
        store_factory: StoreFactory = TimeSeriesStore,
    ):
        if replication < 0:
            raise ConfigurationError(
                f"replication must be >= 0, got {replication}"
            )
        self.shard_id = shard_id
        self._factory = store_factory
        # A factory advertising ``per_member`` gets the member slot index,
        # pinning each member to stable per-slot state (e.g. its WAL
        # directory, which is what makes crash recovery land the right
        # journal in the right member).
        self._per_member = bool(getattr(store_factory, "per_member", False))
        self.members: List[TimeSeriesStore] = [
            self._make_member(i) for i in range(replication + 1)
        ]
        self._down = [False] * len(self.members)
        self._drop_fraction = [0.0] * len(self.members)
        self._drop_rng: Optional[np.random.Generator] = None
        self.missed_writes = [0] * len(self.members)
        self.dropped_writes = [0] * len(self.members)
        self.lost_batches = 0
        self.lost_samples = 0
        self.failover_reads = 0
        self.resync_failures = 0
        self.anti_entropy_sweeps = 0
        self.diverged_windows = 0
        self.repaired_windows = 0
        self.repaired_samples = [0] * len(self.members)
        self._metrics: Optional[MetricsRegistry] = None
        self._metrics_prefix: Optional[str] = None

    def _make_member(self, member: int) -> TimeSeriesStore:
        return self._factory(member=member) if self._per_member else self._factory()

    def _fresh_member(self, member: int) -> TimeSeriesStore:
        """Build an *empty* replacement store for a resync rebuild."""
        fresh = getattr(self._factory, "fresh", None)
        if fresh is not None:
            return fresh(member)
        return self._make_member(member)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def replication(self) -> int:
        return len(self.members) - 1

    @property
    def primary(self) -> TimeSeriesStore:
        return self.members[0]

    def is_down(self, member: int = 0) -> bool:
        return self._down[member]

    @property
    def down_members(self) -> int:
        return sum(self._down)

    @property
    def healthy_members(self) -> int:
        return len(self.members) - self.down_members

    def mark_down(self, member: int = 0) -> None:
        """Take one member offline (writes missed, reads fail over)."""
        self._down[member] = True

    def degrade(
        self,
        drop_fraction: float,
        rng: np.random.Generator,
        member: int = 0,
    ) -> None:
        """Degrade one member: drop this fraction of its writes (seeded).

        Pass ``0.0`` to restore the member to full write acceptance.  A
        degraded member silently diverges from its peers — the realistic
        failure mode of an overloaded backend shedding ingest load.
        """
        if not 0.0 <= drop_fraction <= 1.0:
            raise ConfigurationError(
                f"drop_fraction must be in [0, 1], got {drop_fraction}"
            )
        self._drop_fraction[member] = drop_fraction
        self._drop_rng = rng

    def revive(self, member: int = 0, resync: bool = True) -> None:
        """Bring a member back; by default rebuild it from a healthy peer.

        Without resync the member serves whatever (stale) data it held when
        it went down; with resync it is replaced by a fresh store populated
        from the first healthy peer, so failback reads see the full series.
        Reviving with ``resync=True`` when no peer is healthy keeps the
        member's own data (there is nothing better to copy from) — this is
        no longer silent: it counts as a ``resync_failure`` and logs a
        warning, because the member re-enters service with stale data.
        """
        self._drop_fraction[member] = 0.0
        if resync:
            source = next(
                (
                    m
                    for i, m in enumerate(self.members)
                    if i != member and not self._down[i]
                ),
                None,
            )
            if source is not None:
                source.flush()
                fresh = self._fresh_member(member)
                both_tiered = (
                    getattr(source, "archive", None) is not None
                    and getattr(fresh, "archive", None) is not None
                )
                for name in source.names():
                    if both_tiered and name in source.archive:
                        # Ship cold history as already-encoded chunks (no
                        # decode/re-encode round trip), then copy only the
                        # hot tail; rollups rebuild from the merged tiers
                        # on observe, bit-identical by construction.
                        fresh.archive.adopt(name, source.archive.chunks(name))
                        buf = source.series(name)
                        fresh.append_many(
                            name, buf.times.copy(), buf.values.copy()
                        )
                    else:
                        # Cold-aware query: decoded archive history (if
                        # any) plus hot samples, replayed as raw.
                        times, values = source.query(name)
                        fresh.append_many(name, times, values)
                self.members[member] = fresh
                # The rebuilt member holds everything its peer holds:
                # writes it missed while down *and* writes it shed while
                # degraded are no longer missing, so both counters reset —
                # leaving either non-zero would double-count data that a
                # subsequent audit can see is present.
                self.missed_writes[member] = 0
                self.dropped_writes[member] = 0
            elif self._down[member] and self.replication > 0:
                # A resync was requested and would have mattered (the
                # member was down and has peers to copy from), but every
                # peer is down too: the member serves stale data.
                self.resync_failures += 1
                log.warning(
                    "shard %d: revive(member=%d, resync=True) found no "
                    "healthy peer; member re-enters service with stale data "
                    "(%d writes missed while down)",
                    self.shard_id, member, self.missed_writes[member],
                )
        self._down[member] = False

    # ------------------------------------------------------------------
    # Writes: fan out to every healthy member
    # ------------------------------------------------------------------
    def ingest(self, topic: str, batch: SampleBatch) -> int:
        """Deliver one batch to every healthy member; returns copies written.

        Never raises: down members miss the write, a fully-down shard loses
        the batch (both counted), matching how monitoring stacks behave
        while a storage backend is offline.
        """
        if _OBS.enabled:
            with _OBS.tracer.span(
                "replica.write", sim_time=batch.time, shard=self.shard_id
            ) as sp:
                written = self._ingest(topic, batch)
                sp.set_attr("written", written)
                return written
        return self._ingest(topic, batch)

    def _ingest(self, topic: str, batch: SampleBatch) -> int:
        written = 0
        for i, store in enumerate(self.members):
            if self._down[i]:
                self.missed_writes[i] += len(batch)
                continue
            if (
                self._drop_fraction[i] > 0.0
                and self._drop_rng is not None
                and self._drop_rng.random() < self._drop_fraction[i]
            ):
                self.dropped_writes[i] += len(batch)
                continue
            store.ingest(topic, batch)
            written += 1
        if written == 0:
            self.lost_batches += 1
            self.lost_samples += len(batch)
        return written

    def append(self, name: str, time: float, value: float) -> None:
        for i, store in enumerate(self.members):
            if self._down[i]:
                self.missed_writes[i] += 1
            else:
                store.append(name, time, value)

    def append_many(
        self, name: str, times: np.ndarray, values: np.ndarray
    ) -> None:
        n = int(np.asarray(times).size)
        for i, store in enumerate(self.members):
            if self._down[i]:
                self.missed_writes[i] += n
            else:
                store.append_many(name, times, values)

    def flush(self) -> int:
        return sum(
            store.flush()
            for i, store in enumerate(self.members)
            if not self._down[i]
        )

    # ------------------------------------------------------------------
    # Anti-entropy: detect and repair divergence window by window
    # ------------------------------------------------------------------
    def anti_entropy(
        self, window_s: float = 3600.0, now: Optional[float] = None
    ) -> dict:
        """One repair sweep: compare per-(series, window) checksums across
        healthy members and copy only the differing windows from the best
        source (the member holding the most samples there — divergence
        here means *lost* writes, so more data wins; ties go to the
        lower-index member, i.e. the primary).

        Cheap by construction: agreement costs one checksum pass and a
        dict comparison per series; data moves only for windows that
        actually differ.  The window currently being filled is excluded
        (``now`` caps the comparison; by default the last complete window
        boundary below the newest healthy sample).  When retention is
        configured, windows old enough to be subject to trimming/demotion
        are also excluded — repairing inside the retention horizon would
        fight the sweeper and resurrect trimmed data.

        Repaired samples heal the loss accounting: a member's
        ``dropped_writes``/``missed_writes`` shrink by the net samples
        restored to it, so a fully repaired member no longer counts its
        healed windows as lost.

        Returns a summary dict (``diverged_windows``, ``repaired_windows``,
        ``repaired_samples``, ``checked_series``).
        """
        self.anti_entropy_sweeps += 1
        result = {
            "diverged_windows": 0,
            "repaired_windows": 0,
            "repaired_samples": 0,
            "checked_series": 0,
        }
        healthy = [i for i in range(len(self.members)) if not self._down[i]]
        if len(healthy) < 2:
            return result
        stores = [self.members[i] for i in healthy]
        latest = max(
            (s.latest_time for s in stores if np.isfinite(s.latest_time)),
            default=None,
        )
        if latest is None:
            return result
        until = float(now) if now is not None else (latest // window_s) * window_s
        floor_t = float("-inf")
        retentions = [s.retention for s in stores if s.retention is not None]
        if retentions:
            # One extra window of margin over the tightest retention so a
            # window being trimmed mid-sweep is never "repaired" back.
            floor_t = latest - min(retentions) + window_s
        names = sorted(set().union(*(s.names() for s in stores)))
        for name in names:
            result["checked_series"] += 1
            sums = [s.window_checksums(name, window_s, until=until) for s in stores]
            windows = set().union(*(cs.keys() for cs in sums))
            for w in sorted(windows):
                if w * window_s < floor_t:
                    continue
                per_member = [cs.get(w, (0, 0)) for cs in sums]
                if len({pm[0] for pm in per_member}) == 1:
                    continue
                result["diverged_windows"] += 1
                self.diverged_windows += 1
                src_pos = max(
                    range(len(healthy)),
                    key=lambda p: (per_member[p][1], -p),
                )
                times, values = stores[src_pos].window_data(name, window_s, w)
                for p, member_idx in enumerate(healthy):
                    if p == src_pos or per_member[p] == per_member[src_pos]:
                        continue
                    net = stores[p].replace_window(
                        name, w * window_s, (w + 1) * window_s, times, values
                    )
                    self.repaired_windows += 1
                    result["repaired_windows"] += 1
                    result["repaired_samples"] += int(times.size)
                    self.repaired_samples[member_idx] += int(times.size)
                    self._heal_loss_accounting(member_idx, net)
        return result

    def _heal_loss_accounting(self, member: int, net_samples: int) -> None:
        """Samples restored to a member are no longer dropped or missed."""
        heal = max(0, int(net_samples))
        take = min(self.dropped_writes[member], heal)
        self.dropped_writes[member] -= take
        self.missed_writes[member] = max(
            0, self.missed_writes[member] - (heal - take)
        )

    # ------------------------------------------------------------------
    # Reads: primary, else first healthy replica
    # ------------------------------------------------------------------
    def read_store(self) -> TimeSeriesStore:
        """The member currently serving reads; raises if none is healthy."""
        for i, store in enumerate(self.members):
            if not self._down[i]:
                if i != 0:
                    self.failover_reads += 1
                return store
        raise ShardDownError(
            f"shard {self.shard_id}: all {len(self.members)} members are down"
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _serving_stat(self, attr: str) -> float:
        """Read one stat off the serving member; NaN when all are down.

        Scans members directly (rather than via :meth:`read_store`) so a
        metrics snapshot never perturbs the ``failover_reads`` counter.
        """
        serving = next(
            (m for i, m in enumerate(self.members) if not self._down[i]),
            None,
        )
        if serving is None:
            return float("nan")
        return float(len(serving)) if attr == "series" else float(
            getattr(serving, attr)
        )

    def metrics_registry(self, prefix: str) -> MetricsRegistry:
        """Typed instruments under ``prefix`` (``telemetry.shard.<i>``)."""
        if self._metrics is None or self._metrics_prefix != prefix:
            r = MetricsRegistry()
            r.counter(f"{prefix}.samples", "samples on the serving member",
                      fn=lambda: self._serving_stat("samples_ingested"))
            r.gauge(f"{prefix}.series", "series on the serving member",
                    fn=lambda: self._serving_stat("series"))
            r.gauge(f"{prefix}.down_members", "members currently down",
                    fn=lambda: float(self.down_members))
            r.counter(f"{prefix}.missed_writes",
                      "writes missed by down members",
                      fn=lambda: float(sum(self.missed_writes)))
            r.counter(f"{prefix}.dropped_writes",
                      "writes shed by degraded members",
                      fn=lambda: float(sum(self.dropped_writes)))
            r.counter(f"{prefix}.lost_samples",
                      "samples lost with every member down",
                      fn=lambda: float(self.lost_samples))
            r.counter(f"{prefix}.failover_reads",
                      "reads served by a non-primary member",
                      fn=lambda: float(self.failover_reads))
            r.counter(f"{prefix}.resync_failed",
                      "revivals that found no healthy peer to resync from",
                      fn=lambda: float(self.resync_failures))
            r.counter(f"{prefix}.diverged_windows",
                      "divergent (series, window) pairs detected",
                      fn=lambda: float(self.diverged_windows))
            r.counter(f"{prefix}.repaired_windows",
                      "divergent windows repaired by anti-entropy",
                      fn=lambda: float(self.repaired_windows))
            r.counter(f"{prefix}.repaired_samples",
                      "samples copied to members by anti-entropy",
                      fn=lambda: float(sum(self.repaired_samples)))
            self._metrics = r
            self._metrics_prefix = prefix
        return self._metrics

    def health_metrics(self, prefix: str) -> dict:
        """Per-shard counters under ``prefix`` — a thin dict view over
        :meth:`metrics_registry`."""
        return self.metrics_registry(prefix).snapshot()
