"""Shard-level fault injection for the distributed storage tier.

The storage-tier counterpart of the PR-1 sensor fault machinery
(:mod:`repro.telemetry.faults`): where ``FaultySource`` corrupts what goes
*into* the pipeline, :class:`ShardFault` kills and degrades the backends
the pipeline writes to — the failure mode the replication/failover path
exists for.  Faults can be applied immediately or scheduled on the
discrete-event simulator so a shard dies (and optionally recovers) mid-run
while collection continues.

Every action is recorded as a :class:`ShardFaultEvent` (ground truth for
tests and benchmarks) and, when a bus is attached, announced as a one-sample
batch on the ``telemetry.shard.fault`` topic so fault timing lands in the
store next to the ``telemetry.shard.*`` health counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.simulation.engine import Simulator
from repro.telemetry.bus import MessageBus
from repro.telemetry.distributed.shard import ShardedStore
from repro.telemetry.sample import SampleBatch

__all__ = ["ShardFaultKind", "ShardFaultEvent", "ShardFault", "FAULT_TOPIC"]

#: Bus topic fault announcements are published on.
FAULT_TOPIC = "telemetry.shard.fault"


class ShardFaultKind(Enum):
    """Storage-backend pathologies."""

    KILL = "kill"        # member offline: misses writes, reads fail over
    DEGRADE = "degrade"  # member sheds a fraction of its writes
    REVIVE = "revive"    # member back (optionally resynced from a peer)
    WORKER_CRASH = "worker_crash"  # parallel runtime: shard process dies
    TORN_WAL = "torn_wal"  # crash + partially-written journal tail


@dataclass(frozen=True)
class ShardFaultEvent:
    """One applied fault action (ground truth for evaluation)."""

    time: float
    shard: int
    member: int
    kind: ShardFaultKind


class ShardFault:
    """Kill/degrade/revive members of a :class:`ShardedStore`.

    ::

        fault = ShardFault(store, bus=telemetry.bus)
        fault.schedule_kill(sim, at=1800.0, shard=2)          # dies mid-run
        fault.schedule_revive(sim, at=3600.0, shard=2)        # resynced return
    """

    def __init__(self, store: ShardedStore, bus: Optional[MessageBus] = None):
        self.store = store
        self.bus = bus
        self.events: List[ShardFaultEvent] = []
        self.counts: Dict[ShardFaultKind, int] = {k: 0 for k in ShardFaultKind}

    def _check_target(self, shard: int, member: int) -> None:
        if not 0 <= shard < self.store.shards:
            raise ConfigurationError(
                f"no shard {shard} (store has {self.store.shards})"
            )
        members = len(self.store.replica_sets[shard].members)
        if not 0 <= member < members:
            raise ConfigurationError(
                f"shard {shard} has no member {member} ({members} members)"
            )

    def _record(
        self, now: float, shard: int, member: int, kind: ShardFaultKind
    ) -> None:
        self.events.append(ShardFaultEvent(now, shard, member, kind))
        self.counts[kind] += 1
        if self.bus is not None:
            self.bus.publish(
                FAULT_TOPIC,
                SampleBatch.from_mapping(
                    now, {f"telemetry.shard.{shard}.{kind.value}": float(member)}
                ),
            )

    # ------------------------------------------------------------------
    # Immediate actions
    # ------------------------------------------------------------------
    def kill(self, shard: int, member: int = 0, now: float = 0.0) -> None:
        """Take one member down (default: the shard's primary)."""
        self._check_target(shard, member)
        self.store.replica_sets[shard].mark_down(member)
        self._record(now, shard, member, ShardFaultKind.KILL)

    def degrade(
        self,
        shard: int,
        drop_fraction: float,
        rng: np.random.Generator,
        member: int = 0,
        now: float = 0.0,
    ) -> None:
        """Make one member shed a (seeded) fraction of its writes."""
        self._check_target(shard, member)
        self.store.replica_sets[shard].degrade(drop_fraction, rng, member)
        self._record(now, shard, member, ShardFaultKind.DEGRADE)

    def revive(
        self,
        shard: int,
        member: int = 0,
        resync: bool = True,
        now: float = 0.0,
    ) -> None:
        """Bring a member back, resynced from a healthy peer by default."""
        self._check_target(shard, member)
        self.store.replica_sets[shard].revive(member, resync=resync)
        self._record(now, shard, member, ShardFaultKind.REVIVE)

    def crash_worker(self, shard: int, now: float = 0.0) -> None:
        """Kill a shard's *worker process* (parallel runtime only).

        Unlike :meth:`kill` — which models a storage member going offline
        while the process keeps running — this makes the whole shard
        worker die abruptly (no flush, no checkpoint), exercising crash
        detection, restart and ring replay in
        :class:`~repro.telemetry.runtime.ParallelShardRuntime`.
        """
        if self.store.runtime is None:
            raise ConfigurationError(
                "crash_worker requires a parallel ShardedStore "
                "(parallel=True)"
            )
        if not 0 <= shard < self.store.shards:
            raise ConfigurationError(
                f"no shard {shard} (store has {self.store.shards})"
            )
        self.store.runtime.crash_worker(shard)
        self._record(now, shard, -1, ShardFaultKind.WORKER_CRASH)

    def tear_wal(
        self,
        shard: int,
        now: float = 0.0,
        nbytes: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Crash a shard worker *and* tear the tail of its journal.

        Models the classic torn-write crash: the process dies mid-append
        and the last journal bytes never reach the disk.  Recovery must
        detect the torn tail via CRC framing, drop only the damaged
        records and replay the rest — acked-but-unsynced samples inside
        the torn span are honestly lost and show up in the recovery
        stats, never as silently-wrong reads.
        """
        import os as _os

        from repro.telemetry.durability import tear_wal_tail

        if self.store.runtime is None:
            raise ConfigurationError(
                "tear_wal requires a parallel ShardedStore (parallel=True)"
            )
        journal = self.store.journal
        if journal is None:
            raise ConfigurationError(
                "tear_wal requires a journaled store (pass journal=...)"
            )
        if not 0 <= shard < self.store.shards:
            raise ConfigurationError(
                f"no shard {shard} (store has {self.store.shards})"
            )
        self.store.runtime.crash_worker(shard)
        wal_dir = _os.path.join(journal["base_dir"], f"shard{shard}", "wal")
        tear_wal_tail(wal_dir, nbytes=nbytes, rng=rng)
        self._record(now, shard, -1, ShardFaultKind.TORN_WAL)

    # ------------------------------------------------------------------
    # Scheduled (mid-run) actions
    # ------------------------------------------------------------------
    def schedule_kill(
        self, sim: Simulator, at: float, shard: int, member: int = 0
    ) -> None:
        """Kill a member at absolute simulation time ``at``."""
        self._check_target(shard, member)
        sim.schedule_at(
            at,
            lambda s: self.kill(shard, member, now=s.now),
            label=f"shardfault:kill:{shard}.{member}",
        )

    def schedule_revive(
        self,
        sim: Simulator,
        at: float,
        shard: int,
        member: int = 0,
        resync: bool = True,
    ) -> None:
        """Revive a member at absolute simulation time ``at``."""
        self._check_target(shard, member)
        sim.schedule_at(
            at,
            lambda s: self.revive(shard, member, resync=resync, now=s.now),
            label=f"shardfault:revive:{shard}.{member}",
        )

    def schedule_crash_worker(
        self, sim: Simulator, at: float, shard: int
    ) -> None:
        """Crash a shard worker process at absolute simulation time ``at``."""
        if self.store.runtime is None:
            raise ConfigurationError(
                "crash_worker requires a parallel ShardedStore "
                "(parallel=True)"
            )
        sim.schedule_at(
            at,
            lambda s: self.crash_worker(shard, now=s.now),
            label=f"shardfault:worker_crash:{shard}",
        )

    def schedule_tear_wal(
        self,
        sim: Simulator,
        at: float,
        shard: int,
        nbytes: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Crash a worker and tear its journal tail at sim time ``at``."""
        if self.store.runtime is None:
            raise ConfigurationError(
                "tear_wal requires a parallel ShardedStore (parallel=True)"
            )
        sim.schedule_at(
            at,
            lambda s: self.tear_wal(shard, now=s.now, nbytes=nbytes, rng=rng),
            label=f"shardfault:torn_wal:{shard}",
        )
