"""Distributed telemetry storage: sharding, replication, federation.

The storage tier of a *distributed* ODA deployment, mirroring how DCDB and
LDMS federate per-node storage backends behind one query front-end:

* :mod:`~repro.telemetry.distributed.partition` — consistent series →
  shard assignment (CRC-32 by default, pluggable),
* :mod:`~repro.telemetry.distributed.replica` — one shard slot as primary
  + R replicas with write fan-out and read failover,
* :mod:`~repro.telemetry.distributed.shard` — :class:`ShardedStore`, the
  ``TimeSeriesStore``-compatible front door,
* :mod:`~repro.telemetry.distributed.federation` — cross-shard
  query/align/select with the shared vectorized kernels,
* :mod:`~repro.telemetry.distributed.faults` — shard kill/degrade/revive
  injection, immediate or scheduled mid-run.
"""

from repro.telemetry.distributed.faults import (
    FAULT_TOPIC,
    ShardFault,
    ShardFaultEvent,
    ShardFaultKind,
)
from repro.telemetry.distributed.federation import FederatedQueryEngine
from repro.telemetry.distributed.partition import HashPartitioner, Partitioner
from repro.telemetry.distributed.replica import ReplicaSet
from repro.telemetry.distributed.shard import ShardedStore

__all__ = [
    "FAULT_TOPIC",
    "FederatedQueryEngine",
    "HashPartitioner",
    "Partitioner",
    "ReplicaSet",
    "ShardFault",
    "ShardFaultEvent",
    "ShardFaultKind",
    "ShardedStore",
]
