"""Collection agents: the sampling tier of the telemetry pipeline.

A :class:`Sampler` wraps a source callable that reads instantaneous values
from some substrate component (a node's power model, a chiller's COP…).  The
:class:`CollectionAgent` drives a set of samplers on a period using the
discrete-event simulator and publishes each scrape as one
:class:`~repro.telemetry.sample.SampleBatch` on the message bus — the same
pull-model architecture as LDMS samplers + aggregators or Prometheus scrape
jobs.

A raising (or over-budget) source does not crash the run: the failure is
counted on the sampler and the agent, and the sampler is retried with
exponential backoff (skipping scrape ticks) until it recovers — mirroring
how production collectors survive flaky sensors.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError, SamplerTimeoutError
from repro.obs import OBS as _OBS
from repro.obs.metrics import MetricsRegistry
from repro.simulation.engine import PeriodicHandle, Simulator
from repro.telemetry.bus import MessageBus
from repro.telemetry.metric import MetricRegistry, MetricSpec
from repro.telemetry.sample import SampleBatch

__all__ = ["Sampler", "CollectionAgent", "TelemetrySystem"]

SourceFn = Callable[[float], Dict[str, float]]


@dataclass
class Sampler:
    """One scrapeable source of metrics.

    Attributes
    ----------
    name:
        Sampler identifier; also the bus topic its batches are published on.
    source:
        Callable ``source(now) -> {metric_name: value}``.  Called at each
        scrape with the current simulation time.
    specs:
        The metric specs this sampler produces.  Declared up front so the
        registry is complete before the first scrape (analytics can plan
        against the registry without waiting for data).

    ``errors`` / ``consecutive_errors`` / ``suspended_until`` record scrape
    failures and the backoff window the owning agent applies; they are
    maintained by :class:`CollectionAgent`.
    """

    name: str
    source: SourceFn
    specs: List[MetricSpec] = field(default_factory=list)
    scrapes: int = 0
    samples: int = 0
    errors: int = 0
    timeouts: int = 0
    consecutive_errors: int = 0
    last_error: str = ""
    suspended_until: float = float("-inf")
    #: Cumulative wall-clock seconds spent inside :meth:`scrape`.
    scrape_seconds: float = 0.0

    def scrape(self, now: float) -> SampleBatch:
        """Read the source and package the result as a batch."""
        readings = self.source(now)
        self.scrapes += 1
        self.samples += len(readings)
        return SampleBatch.from_mapping(now, readings)


class CollectionAgent:
    """Drives a group of samplers at a fixed period and publishes batches.

    Parameters
    ----------
    backoff_cap:
        Upper bound, in periods, of the exponential retry backoff applied to
        a repeatedly-failing sampler (1, 2, 4, … scrape periods).
    source_timeout_s:
        Optional wall-clock budget per source call; a slower source counts as
        a timed-out scrape and its (late) batch is discarded.  Off by default
        to keep simulations fully deterministic.
    """

    def __init__(
        self,
        name: str,
        bus: MessageBus,
        period: float,
        registry: Optional[MetricRegistry] = None,
        backoff_cap: float = 64.0,
        source_timeout_s: Optional[float] = None,
    ):
        if period <= 0:
            raise ConfigurationError(f"agent {name}: period must be > 0")
        if backoff_cap < 1:
            raise ConfigurationError(f"agent {name}: backoff_cap must be >= 1")
        self.name = name
        self.bus = bus
        self.period = period
        self.registry = registry
        self.backoff_cap = backoff_cap
        self.source_timeout_s = source_timeout_s
        self.scrape_errors = 0
        self.scrapes_skipped = 0
        self.last_error = ""
        self.scrape_seconds = 0.0
        self._samplers: List[Sampler] = []
        self._handle: Optional[PeriodicHandle] = None
        self._metrics: Optional[MetricsRegistry] = None

    def add_sampler(self, sampler: Sampler) -> Sampler:
        """Attach a sampler and register its metric specs."""
        self._samplers.append(sampler)
        if self.registry is not None:
            self.registry.register_many(sampler.specs)
        return sampler

    @property
    def samplers(self) -> List[Sampler]:
        return list(self._samplers)

    def collect_once(self, now: float) -> int:
        """Scrape every sampler once and publish; returns batches published.

        A raising source is isolated: the error is recorded and the sampler
        enters exponential backoff (its next scrapes are skipped) instead of
        killing the collection tick.
        """
        if _OBS.enabled:
            with _OBS.tracer.span(
                "collector.collect", sim_time=now, agent=self.name
            ):
                return self._collect_once(now)
        return self._collect_once(now)

    def _collect_once(self, now: float) -> int:
        published = 0
        obs_on = _OBS.enabled
        for sampler in self._samplers:
            if now < sampler.suspended_until:
                self.scrapes_skipped += 1
                continue
            if obs_on:
                with _OBS.tracer.span(
                    "collector.scrape", sim_time=now, sampler=sampler.name
                ):
                    published += self._scrape_and_publish(sampler, now)
            else:
                published += self._scrape_and_publish(sampler, now)
        return published

    def _scrape_and_publish(self, sampler: Sampler, now: float) -> int:
        """Scrape one sampler and publish its batch; returns 0 or 1."""
        try:
            batch = self._scrape(sampler, now)
        except Exception as exc:  # noqa: BLE001 — isolate any source failure
            self._record_error(sampler, now, exc)
            return 0
        sampler.consecutive_errors = 0
        sampler.suspended_until = float("-inf")
        if len(batch):
            self.bus.publish(sampler.name, batch)
            return 1
        return 0

    def _scrape(self, sampler: Sampler, now: float) -> SampleBatch:
        """Timed scrape of one source; always accounts wall-clock duration.

        The elapsed wall time is accumulated on both the sampler and the
        agent (surfaced as ``telemetry.agent.<name>.scrape_seconds``) even
        when the source raises, so a slow-then-failing sensor is visible in
        the duration metric and not just the error counters.
        """
        t0 = _time.perf_counter()
        try:
            batch = sampler.scrape(now)
        finally:
            elapsed = _time.perf_counter() - t0
            sampler.scrape_seconds += elapsed
            self.scrape_seconds += elapsed
        if self.source_timeout_s is not None and elapsed > self.source_timeout_s:
            sampler.timeouts += 1
            raise SamplerTimeoutError(
                f"sampler {sampler.name}: scrape took {elapsed:.3f}s "
                f"(budget {self.source_timeout_s}s)"
            )
        return batch

    def _record_error(self, sampler: Sampler, now: float, exc: Exception) -> None:
        sampler.errors += 1
        sampler.consecutive_errors += 1
        sampler.last_error = repr(exc)
        self.scrape_errors += 1
        self.last_error = f"{sampler.name}: {exc!r}"
        backoff = self.period * min(
            2.0 ** (sampler.consecutive_errors - 1), self.backoff_cap
        )
        sampler.suspended_until = now + backoff

    def start(self, sim: Simulator, start_delay: float = 0.0) -> None:
        """Begin periodic collection on the simulator."""
        if self._handle is not None and self._handle.active:
            raise ConfigurationError(f"agent {self.name} already started")
        self._handle = sim.schedule_periodic(
            self.period,
            lambda s: self.collect_once(s.now),
            start_delay=start_delay,
            label=f"collect:{self.name}",
            priority=10,  # run after physics updates at the same timestamp
        )

    def stop(self) -> None:
        """Stop periodic collection."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def metrics(self) -> MetricsRegistry:
        """Typed instruments over the agent counters (lazily built)."""
        if self._metrics is None:
            prefix = f"telemetry.agent.{self.name}"
            r = MetricsRegistry()
            r.gauge(f"{prefix}.samplers", "attached samplers",
                    fn=lambda: float(len(self._samplers)))
            r.counter(f"{prefix}.scrapes", "completed scrapes",
                      fn=lambda: float(sum(s.scrapes for s in self._samplers)))
            r.counter(f"{prefix}.samples", "samples produced",
                      fn=lambda: float(sum(s.samples for s in self._samplers)))
            r.counter(f"{prefix}.scrape_errors", "raising/over-budget scrapes",
                      fn=lambda: float(self.scrape_errors))
            r.counter(f"{prefix}.scrapes_skipped",
                      "scrapes skipped by backoff",
                      fn=lambda: float(self.scrapes_skipped))
            r.counter(f"{prefix}.scrape_seconds",
                      "cumulative wall-clock seconds spent scraping",
                      unit="s", fn=lambda: self.scrape_seconds)
            self._metrics = r
        return self._metrics

    def health_metrics(self) -> Dict[str, float]:
        """Self-metrics snapshot — a thin dict view over :attr:`metrics`."""
        return self.metrics.snapshot()


class TelemetrySystem:
    """Convenience bundle: registry + bus + store + agents, pre-wired.

    This is the "monitoring stack in a box" most examples use::

        telemetry = TelemetrySystem(store_retention=86400.0)
        agent = telemetry.new_agent("rack0", period=10.0)
        agent.add_sampler(Sampler("cluster.rack0", node_source, specs))
        agent.start(sim)
        sim.run(3600)
        times, watts = telemetry.store.query("cluster.rack0.node0.cpu_power")

    ``alerts`` lazily attaches an :class:`~repro.telemetry.alerts.AlertEngine`
    to the bus on first access; :meth:`enable_health` adds a
    :class:`~repro.telemetry.health.HealthMonitor` publishing pipeline
    self-metrics and driving stale-data checks.

    With ``shards`` set, the archive tier is a hash-partitioned
    :class:`~repro.telemetry.distributed.ShardedStore` (optionally
    replicated ``replication`` times per shard) instead of a single
    :class:`~repro.telemetry.store.TimeSeriesStore`; collector output is
    routed through it transparently and every read API is unchanged.

    ``rollups`` / ``archive`` enable the materialized downsample cascade
    and the compressed columnar cold tier on the store (single or
    sharded), in the same bool/dict/config forms accepted by
    :class:`~repro.telemetry.store.TimeSeriesStore`.
    """

    def __init__(
        self,
        store_retention: Optional[float] = None,
        health_period: Optional[float] = None,
        store_retention_slack: float = 0.25,
        store_flush_threshold: int = 256,
        shards: Optional[int] = None,
        replication: int = 0,
        parallel: bool = False,
        parallel_config=None,
        rollups=None,
        archive=None,
        journal=None,
    ):
        from repro.telemetry.store import TimeSeriesStore

        if shards is None and replication:
            raise ConfigurationError(
                "replication requires a sharded store (pass shards=...)"
            )
        if shards is None and parallel:
            raise ConfigurationError(
                "parallel ingest requires a sharded store (pass shards=...)"
            )
        self.registry = MetricRegistry()
        self.bus = MessageBus()
        if shards is not None:
            from repro.telemetry.distributed import ShardedStore

            self.store = ShardedStore(
                shards=shards,
                replication=replication,
                retention=store_retention,
                retention_slack=store_retention_slack,
                flush_threshold=store_flush_threshold,
                parallel=parallel,
                parallel_config=parallel_config,
                rollups=rollups,
                archive=archive,
                journal=journal,
            )
        else:
            self.store = TimeSeriesStore(
                retention=store_retention,
                retention_slack=store_retention_slack,
                flush_threshold=store_flush_threshold,
                rollups=rollups,
                archive=archive,
                journal=journal,
            )
        self.agents: List[CollectionAgent] = []
        self._alerts = None
        self._frontend = None
        self.health = None
        self.bus.subscribe("#", self.store.ingest)
        if health_period is not None:
            self.enable_health(health_period)

    @property
    def alerts(self):
        """The alert engine, subscribed to the bus on first access."""
        if self._alerts is None:
            from repro.telemetry.alerts import AlertEngine

            self._alerts = AlertEngine()
            self.bus.subscribe("#", self._alerts.observe)
        return self._alerts

    def frontend(self, **kwargs):
        """The multi-tenant query front door, created on first access.

        Keyword arguments are forwarded to
        :class:`~repro.telemetry.serving.QueryFrontend` on creation only;
        passing them again once the frontend exists raises, because a
        silently ignored config is worse than an error.
        """
        if self._frontend is None:
            from repro.telemetry.serving import QueryFrontend

            self._frontend = QueryFrontend(self.store, **kwargs)
        elif kwargs:
            raise ConfigurationError(
                "frontend already created; configure tenants via "
                "frontend().configure_tenant(...) instead"
            )
        return self._frontend

    def enable_health(self, period: float = 60.0):
        """Attach (or return) the pipeline self-metrics monitor."""
        if self.health is None:
            from repro.telemetry.health import HealthMonitor

            self.health = HealthMonitor(
                self.bus,
                store=self.store,
                agents=self.agents,  # shared list: later agents are seen too
                alerts=lambda: self._alerts,
                period=period,
            )
        return self.health

    def new_agent(self, name: str, period: float) -> CollectionAgent:
        """Create, register and return a collection agent."""
        agent = CollectionAgent(name, self.bus, period, registry=self.registry)
        self.agents.append(agent)
        return agent

    def start_all(self, sim: Simulator) -> None:
        """Start every agent (and the health monitor) not already running."""
        for agent in self.agents:
            if agent._handle is None or not agent._handle.active:
                agent.start(sim)
        if self.health is not None and not self.health.running:
            self.health.start(sim)

    def stop_all(self) -> None:
        for agent in self.agents:
            agent.stop()
        if self.health is not None:
            self.health.stop()
        # Compact any staged samples so a stopped system is fully flushed
        # (reads flush lazily anyway; this is for persistence/shutdown).
        self.store.flush()

    def close(self) -> None:
        """Stop collection and shut the store down.

        For a parallel sharded store this gracefully drains the shard
        worker processes (every pushed batch is applied and flushed — or
        checkpointed — before the workers exit); otherwise it is
        equivalent to :meth:`stop_all`.
        """
        self.stop_all()
        if self._frontend is not None:
            self._frontend.close()
        close = getattr(self.store, "close", None)
        if close is not None:
            close()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metric_registries(self) -> List[MetricsRegistry]:
        """Every typed-metric registry in the stack: bus, agents, store,
        health monitor, plus the global profiling registry when the
        observability switch has collected anything."""
        registries = [self.bus.metrics]
        registries.extend(agent.metrics for agent in self.agents)
        store_registries = getattr(self.store, "metric_registries", None)
        if store_registries is not None:  # sharded store: one per replica set
            registries.extend(store_registries())
        elif getattr(self.store, "metrics", None) is not None:
            registries.append(self.store.metrics)
        if self.health is not None:
            registries.append(self.health.metrics_registry)
        if self._frontend is not None:
            registries.append(self._frontend.metrics)
        if len(_OBS.registry):
            registries.append(_OBS.registry)
        return registries

    def prometheus(self) -> str:
        """Prometheus text exposition of the whole pipeline's self-metrics
        (typed ``telemetry.*`` instruments + ``obs.*`` span histograms)."""
        from repro.obs.metrics import prometheus_text

        return prometheus_text(self.metric_registries())
