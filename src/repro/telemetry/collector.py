"""Collection agents: the sampling tier of the telemetry pipeline.

A :class:`Sampler` wraps a source callable that reads instantaneous values
from some substrate component (a node's power model, a chiller's COP…).  The
:class:`CollectionAgent` drives a set of samplers on a period using the
discrete-event simulator and publishes each scrape as one
:class:`~repro.telemetry.sample.SampleBatch` on the message bus — the same
pull-model architecture as LDMS samplers + aggregators or Prometheus scrape
jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.simulation.engine import PeriodicHandle, Simulator
from repro.telemetry.bus import MessageBus
from repro.telemetry.metric import MetricRegistry, MetricSpec
from repro.telemetry.sample import SampleBatch

__all__ = ["Sampler", "CollectionAgent", "TelemetrySystem"]

SourceFn = Callable[[float], Dict[str, float]]


@dataclass
class Sampler:
    """One scrapeable source of metrics.

    Attributes
    ----------
    name:
        Sampler identifier; also the bus topic its batches are published on.
    source:
        Callable ``source(now) -> {metric_name: value}``.  Called at each
        scrape with the current simulation time.
    specs:
        The metric specs this sampler produces.  Declared up front so the
        registry is complete before the first scrape (analytics can plan
        against the registry without waiting for data).
    """

    name: str
    source: SourceFn
    specs: List[MetricSpec] = field(default_factory=list)
    scrapes: int = 0
    samples: int = 0

    def scrape(self, now: float) -> SampleBatch:
        """Read the source and package the result as a batch."""
        readings = self.source(now)
        self.scrapes += 1
        self.samples += len(readings)
        return SampleBatch.from_mapping(now, readings)


class CollectionAgent:
    """Drives a group of samplers at a fixed period and publishes batches."""

    def __init__(
        self,
        name: str,
        bus: MessageBus,
        period: float,
        registry: Optional[MetricRegistry] = None,
    ):
        if period <= 0:
            raise ConfigurationError(f"agent {name}: period must be > 0")
        self.name = name
        self.bus = bus
        self.period = period
        self.registry = registry
        self._samplers: List[Sampler] = []
        self._handle: Optional[PeriodicHandle] = None

    def add_sampler(self, sampler: Sampler) -> Sampler:
        """Attach a sampler and register its metric specs."""
        self._samplers.append(sampler)
        if self.registry is not None:
            self.registry.register_many(sampler.specs)
        return sampler

    @property
    def samplers(self) -> List[Sampler]:
        return list(self._samplers)

    def collect_once(self, now: float) -> int:
        """Scrape every sampler once and publish; returns batches published."""
        published = 0
        for sampler in self._samplers:
            batch = sampler.scrape(now)
            if len(batch):
                self.bus.publish(sampler.name, batch)
                published += 1
        return published

    def start(self, sim: Simulator, start_delay: float = 0.0) -> None:
        """Begin periodic collection on the simulator."""
        if self._handle is not None and self._handle.active:
            raise ConfigurationError(f"agent {self.name} already started")
        self._handle = sim.schedule_periodic(
            self.period,
            lambda s: self.collect_once(s.now),
            start_delay=start_delay,
            label=f"collect:{self.name}",
            priority=10,  # run after physics updates at the same timestamp
        )

    def stop(self) -> None:
        """Stop periodic collection."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None


class TelemetrySystem:
    """Convenience bundle: registry + bus + store + agents, pre-wired.

    This is the "monitoring stack in a box" most examples use::

        telemetry = TelemetrySystem(store_retention=86400.0)
        agent = telemetry.new_agent("rack0", period=10.0)
        agent.add_sampler(Sampler("cluster.rack0", node_source, specs))
        agent.start(sim)
        sim.run(3600)
        times, watts = telemetry.store.query("cluster.rack0.node0.cpu_power")
    """

    def __init__(self, store_retention: Optional[float] = None):
        from repro.telemetry.store import TimeSeriesStore

        self.registry = MetricRegistry()
        self.bus = MessageBus()
        self.store = TimeSeriesStore(retention=store_retention)
        self.agents: List[CollectionAgent] = []
        self.bus.subscribe("#", self.store.ingest)

    def new_agent(self, name: str, period: float) -> CollectionAgent:
        """Create, register and return a collection agent."""
        agent = CollectionAgent(name, self.bus, period, registry=self.registry)
        self.agents.append(agent)
        return agent

    def start_all(self, sim: Simulator) -> None:
        """Start every agent that is not already running."""
        for agent in self.agents:
            if agent._handle is None or not agent._handle.active:
                agent.start(sim)

    def stop_all(self) -> None:
        for agent in self.agents:
            agent.stop()
