"""Metric specifications and the metric registry.

A metric is a named, typed, unit-carrying time series produced by some
component of the data center ("sensor" in monitoring-stack parlance).
Names are hierarchical, dot-separated paths mirroring the physical topology,
e.g. ``cluster.rack0.node3.cpu_power`` or ``facility.chiller0.cop`` — the
same convention used by production HPC monitoring stacks such as DCDB and
LDMS, which lets analytics select whole subtrees with a prefix query.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Mapping, Optional

from repro.errors import ConfigurationError, UnknownMetricError

__all__ = ["MetricKind", "Unit", "MetricSpec", "MetricRegistry"]


class MetricKind(Enum):
    """How a metric's value evolves, which determines valid aggregations.

    GAUGE values may move arbitrarily (temperature, utilization); COUNTER
    values are monotonically non-decreasing (energy, completed jobs) and are
    usually differentiated before analysis; EVENT metrics are sparse
    occurrence counts (faults, alerts).
    """

    GAUGE = "gauge"
    COUNTER = "counter"
    EVENT = "event"


class Unit(Enum):
    """SI-ish units used across the substrate. Values are display symbols."""

    WATT = "W"
    JOULE = "J"
    CELSIUS = "degC"
    HERTZ = "Hz"
    FRACTION = "frac"       # dimensionless in [0, 1]
    PERCENT = "%"
    BYTES = "B"
    BYTES_PER_SECOND = "B/s"
    SECONDS = "s"
    COUNT = "count"
    FLOPS = "flop/s"
    LITERS_PER_SECOND = "L/s"
    KELVIN_PER_WATT = "K/W"
    DIMENSIONLESS = ""


@dataclass(frozen=True)
class MetricSpec:
    """Static description of one metric.

    Attributes
    ----------
    name:
        Dot-separated hierarchical identifier, unique within a registry.
    unit:
        Physical unit of the sampled values.
    kind:
        Gauge / counter / event semantics (see :class:`MetricKind`).
    description:
        One-line human description for dashboards.
    low, high:
        Optional plausibility bounds used by validation and by descriptive
        normalization; ``None`` means unbounded on that side.
    labels:
        Arbitrary static key/value annotations (pillar, component class...).
    """

    name: str
    unit: Unit = Unit.DIMENSIONLESS
    kind: MetricKind = MetricKind.GAUGE
    description: str = ""
    low: Optional[float] = None
    high: Optional[float] = None
    labels: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or self.name.startswith(".") or self.name.endswith("."):
            raise ConfigurationError(f"invalid metric name: {self.name!r}")
        if self.low is not None and self.high is not None and self.low > self.high:
            raise ConfigurationError(
                f"metric {self.name}: low={self.low} > high={self.high}"
            )

    def validate(self, value: float) -> bool:
        """Whether ``value`` lies within the declared plausibility bounds."""
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    @property
    def component(self) -> str:
        """The metric path without its final segment (its owning component)."""
        head, _, _ = self.name.rpartition(".")
        return head

    @property
    def leaf(self) -> str:
        """The final path segment (the quantity name)."""
        return self.name.rpartition(".")[2]


class MetricRegistry:
    """Collection of :class:`MetricSpec` indexed by name.

    Supports shell-style pattern selection (``cluster.*.cpu_power``) and
    prefix selection, which is what analytics code uses to gather all
    signals for a pillar or a component subtree.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, MetricSpec] = {}

    def register(self, spec: MetricSpec) -> MetricSpec:
        """Add a spec; re-registering an identical spec is a no-op."""
        existing = self._specs.get(spec.name)
        if existing is not None:
            if existing != spec:
                raise ConfigurationError(
                    f"metric {spec.name!r} already registered with a different spec"
                )
            return existing
        self._specs[spec.name] = spec
        return spec

    def register_many(self, specs: List[MetricSpec]) -> None:
        for spec in specs:
            self.register(spec)

    def get(self, name: str) -> MetricSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise UnknownMetricError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[MetricSpec]:
        return iter(self._specs.values())

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._specs)

    def select(self, pattern: str) -> List[MetricSpec]:
        """Return specs whose names match a shell-style ``pattern``."""
        return [
            self._specs[name]
            for name in sorted(self._specs)
            if fnmatch.fnmatchcase(name, pattern)
        ]

    def select_prefix(self, prefix: str) -> List[MetricSpec]:
        """Return specs under a hierarchical ``prefix`` (inclusive)."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return [
            spec
            for name, spec in sorted(self._specs.items())
            if name == prefix or name.startswith(dotted)
        ]

    def select_labels(self, **labels: str) -> List[MetricSpec]:
        """Return specs whose ``labels`` include every given key/value."""
        out = []
        for name in sorted(self._specs):
            spec = self._specs[name]
            if all(spec.labels.get(k) == v for k, v in labels.items()):
                out.append(spec)
        return out
