"""Sensor-fault injection for the telemetry pipeline.

Real monitoring deployments never see clean data: sensors drop out, stick at
their last reading, spike, emit NaN, or drift out of calibration (the
pathologies catalogued by the DCDB and ExaMon deployment reports).
:class:`FaultySource` wraps any sampler source callable and injects exactly
these pathologies — either on a deterministic schedule (:meth:`inject`) or
stochastically from a seeded RNG — so diagnostic-cell analytics and the
fault-tolerant collection path can be exercised with realistic dirty data
while staying bit-for-bit reproducible.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError, SensorDropoutError

__all__ = ["SensorFaultKind", "SensorFault", "FaultySource"]


class SensorFaultKind(Enum):
    """The classic sensor pathologies."""

    DROPOUT = "dropout"    # sensor offline: the scrape raises
    STUCK = "stuck"        # repeats the last good reading
    SPIKE = "spike"        # reading multiplied by a large factor
    NAN = "nan"            # reading replaced by NaN
    DRIFT = "drift"        # linearly growing calibration offset


@dataclass(frozen=True)
class SensorFault:
    """One scheduled fault episode (ground truth for detector evaluation).

    ``magnitude`` is kind-specific: spike multiplier, drift rate per second,
    ignored for dropout/stuck/NaN.  ``metrics`` is a shell-style pattern
    restricting which readings of the source are corrupted (dropout always
    affects the whole scrape — an offline sensor returns nothing at all).
    """

    kind: SensorFaultKind
    start: float
    duration: float
    magnitude: float = 1.0
    metrics: str = "*"

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active(self, now: float) -> bool:
        return self.start <= now <= self.end


class FaultySource:
    """Wrap a source callable with seeded sensor-fault injection.

    Use it anywhere a plain source fits::

        sampler = Sampler("cluster.rack0", FaultySource(node_source, rng,
                                                        dropout_prob=0.1))

    Two injection mechanisms compose:

    * **Scheduled** episodes via :meth:`inject` — deterministic ground truth
      for benchmarks.
    * **Stochastic** per-scrape faults drawn from ``rng`` with the given
      probabilities; a triggered stuck fault opens an episode of
      ``stuck_duration_s`` rather than corrupting a single scrape.

    All injected events are recorded in ``events`` / ``counts`` so tests can
    compare detector output against ground truth.
    """

    def __init__(
        self,
        source,
        rng: Optional[np.random.Generator] = None,
        dropout_prob: float = 0.0,
        stuck_prob: float = 0.0,
        spike_prob: float = 0.0,
        nan_prob: float = 0.0,
        drift_rate: float = 0.0,
        spike_magnitude: float = 10.0,
        stuck_duration_s: float = 300.0,
    ):
        probs = (dropout_prob, stuck_prob, spike_prob, nan_prob)
        if any(p < 0 or p > 1 for p in probs):
            raise ConfigurationError("fault probabilities must be in [0, 1]")
        if any(probs) and rng is None:
            raise ConfigurationError(
                "stochastic fault injection requires a seeded rng"
            )
        self.source = source
        self.rng = rng
        self.dropout_prob = dropout_prob
        self.stuck_prob = stuck_prob
        self.spike_prob = spike_prob
        self.nan_prob = nan_prob
        self.drift_rate = drift_rate
        self.spike_magnitude = spike_magnitude
        self.stuck_duration_s = stuck_duration_s
        self.scheduled: List[SensorFault] = []
        self.events: List[tuple] = []  # (time, SensorFaultKind)
        self.counts: Dict[SensorFaultKind, int] = {k: 0 for k in SensorFaultKind}
        self._last_good: Optional[Dict[str, float]] = None
        self._stuck_until = float("-inf")
        self._drift_started: Optional[float] = None

    # ------------------------------------------------------------------
    def inject(
        self,
        kind: SensorFaultKind,
        start: float,
        duration: float,
        magnitude: float = 1.0,
        metrics: str = "*",
    ) -> SensorFault:
        """Schedule a deterministic fault episode; returns the ground truth."""
        if duration < 0:
            raise ConfigurationError("fault duration must be >= 0")
        fault = SensorFault(kind, start, duration, magnitude, metrics)
        self.scheduled.append(fault)
        return fault

    def _record(self, now: float, kind: SensorFaultKind) -> None:
        self.counts[kind] += 1
        self.events.append((now, kind))

    # ------------------------------------------------------------------
    def __call__(self, now: float) -> Dict[str, float]:
        active = [f for f in self.scheduled if f.active(now)]

        # Stochastic draws happen every scrape, in a fixed order, so the
        # rng stream stays aligned across runs regardless of which faults
        # actually trigger.
        draws = self.rng.random(4) if self.rng is not None else None
        dropout = any(f.kind is SensorFaultKind.DROPOUT for f in active)
        if draws is not None and draws[0] < self.dropout_prob:
            dropout = True
        if dropout:
            self._record(now, SensorFaultKind.DROPOUT)
            raise SensorDropoutError(f"sensor offline at t={now}")

        if draws is not None and draws[1] < self.stuck_prob:
            self._stuck_until = max(self._stuck_until, now + self.stuck_duration_s)
        stuck = [f for f in active if f.kind is SensorFaultKind.STUCK]
        if (now <= self._stuck_until or stuck) and self._last_good is not None:
            self._record(now, SensorFaultKind.STUCK)
            if stuck and stuck[0].metrics != "*":
                # Partial stuck-at: only matching metrics freeze.
                readings = dict(self.source(now))
                for name in readings:
                    if fnmatch.fnmatchcase(name, stuck[0].metrics):
                        readings[name] = self._last_good.get(name, readings[name])
                return readings
            return dict(self._last_good)

        readings = dict(self.source(now))

        for fault in active:
            if fault.kind is SensorFaultKind.SPIKE:
                self._corrupt(readings, fault.metrics, lambda v: v * fault.magnitude)
                self._record(now, SensorFaultKind.SPIKE)
            elif fault.kind is SensorFaultKind.NAN:
                self._corrupt(readings, fault.metrics, lambda v: float("nan"))
                self._record(now, SensorFaultKind.NAN)
            elif fault.kind is SensorFaultKind.DRIFT:
                offset = fault.magnitude * (now - fault.start)
                self._corrupt(readings, fault.metrics, lambda v: v + offset)
                self._record(now, SensorFaultKind.DRIFT)

        if draws is not None and draws[2] < self.spike_prob and readings:
            victim = sorted(readings)[int(draws[3] * len(readings)) % len(readings)]
            readings[victim] *= self.spike_magnitude
            self._record(now, SensorFaultKind.SPIKE)
        if draws is not None and draws[3] < self.nan_prob:
            for name in readings:
                readings[name] = float("nan")
            self._record(now, SensorFaultKind.NAN)

        if self.drift_rate:
            if self._drift_started is None:
                self._drift_started = now
            offset = self.drift_rate * (now - self._drift_started)
            if offset:
                for name in readings:
                    readings[name] += offset
                self._record(now, SensorFaultKind.DRIFT)

        if not any(np.isnan(v) for v in readings.values()):
            self._last_good = dict(readings)
        return readings

    @staticmethod
    def _corrupt(readings: Dict[str, float], pattern: str, fn) -> None:
        for name, value in readings.items():
            if pattern == "*" or fnmatch.fnmatchcase(name, pattern):
                readings[name] = fn(value)
