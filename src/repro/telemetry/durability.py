"""Write-ahead journal and crash-recovery primitives for telemetry stores.

Production ODA deployments live or die on surviving daemon crashes without
losing accepted telemetry (Netti et al.; DCDB Wintermute runs its collection
daemons under exactly this constraint).  This module supplies the durability
layer: an append-only, CRC-framed write-ahead journal that a
:class:`~repro.telemetry.store.TimeSeriesStore` writes *before* mutating its
in-memory buffers, plus the recovery scanner that replays the intact record
prefix after a crash — tolerating a torn tail — and the chaos injectors that
damage journals and persisted artifacts on purpose.

Journal layout
--------------

A journal is a directory of segment files ``wal-<startseq>.seg``::

    segment := header record*
    header  := magic "RWAL" | u8 version | u8 crc_algo | u16 reserved | u64 start_seq
    record  := u32 payload_len | u32 crc(payload) | payload
    payload := u8 rtype | u64 seq | body

Record types cover the store's ingest surface: ``NAMES`` interns a name
tuple under a small integer id (mirroring the parallel runtime's ring
interning), ``BATCH`` is one wide sample batch against an interned id,
``MANY``/``POINT`` carry per-series appends, ``BLOCK`` a columnar block,
and ``MARK`` an opaque external watermark (the parallel runtime stores ring
sequence numbers there so a restarted worker knows where ring replay should
resume).

Group commit & sync policy
--------------------------

Appends are encoded into an in-process buffer and written to the OS in
batches (``group_bytes``), so the hot path pays one ``write(2)`` per group,
not per record.  ``sync`` selects the durability/latency trade-off:

- ``"always"`` — flush + fsync on every append (survives power loss; slow)
- ``"interval"`` — flush on group boundaries, fsync at most every
  ``sync_interval_s`` seconds (bounded loss window)
- ``"never"`` — flush on group boundaries, never fsync (survives process
  kill via the OS page cache; not power loss)

``flushed_seq`` is the highest sequence handed to the OS; ``synced_seq``
the highest fsynced.  Acknowledgement protocols should ack no further than
the guarantee they advertise.

Recovery tolerates damage instead of raising: a torn tail (partial final
record after a crash mid-write) truncates replay at the last intact record;
a corrupt record mid-journal drops the rest of that segment and continues
with the next, with every drop counted on :class:`RecoveryStats`.
"""

from __future__ import annotations

import io
import json
import os
import struct
import time as _time
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.errors import JournalError
from repro.ioutil import CRC_ALGO, atomic_write_json, crc32, fsync_dir

__all__ = [
    "JournalConfig",
    "RecoveryStats",
    "WriteAheadJournal",
    "DurabilityFaultEvent",
    "SYNC_POLICIES",
    "iter_records",
    "scan_journal",
    "read_watermark",
    "window_checksums",
    "tear_wal_tail",
    "corrupt_artifact",
]

_MAGIC = b"RWAL"
_VERSION = 1
_HEADER = struct.Struct("<4sBBHQ")  # magic, version, crc_algo, reserved, start_seq
_FRAME = struct.Struct("<II")  # payload_len, crc
_PREFIX = struct.Struct("<BQ")  # rtype, seq
_ALGO_IDS = {"crc32": 0, "crc32c": 1}
_ALGO_NAMES = {v: k for k, v in _ALGO_IDS.items()}

REC_NAMES = 1
REC_BATCH = 2
REC_MANY = 3
REC_BLOCK = 4
REC_MARK = 5

_WATERMARK_FILE = "DURABLE"
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"

SYNC_POLICIES = ("never", "interval", "always")


@dataclass(frozen=True)
class JournalConfig:
    """Tuning knobs for a :class:`WriteAheadJournal`.

    ``dir`` is the journal directory (created on demand).  A store opened
    against a directory that already holds segments replays them first —
    that is the crash-recovery path.
    """

    dir: str
    segment_max_bytes: int = 4 * 1024 * 1024
    sync: str = "interval"
    sync_interval_s: float = 0.05
    group_bytes: int = 64 * 1024

    def __post_init__(self):
        if self.sync not in SYNC_POLICIES:
            raise JournalError(
                f"unknown sync policy {self.sync!r}; expected one of {SYNC_POLICIES}"
            )
        if self.segment_max_bytes < 256:
            raise JournalError("segment_max_bytes must be >= 256")


@dataclass
class RecoveryStats:
    """Outcome of one journal scan/replay."""

    segments: int = 0
    records: int = 0
    replayed_records: int = 0
    skipped_records: int = 0  # at or below the durable watermark
    replayed_samples: int = 0
    torn_tail_drops: int = 0  # segments ending in a partial/corrupt tail record
    corrupt_records: int = 0  # mid-journal frames failing CRC (rest of segment dropped)
    replay_conflicts: int = 0  # intact records the store refused during replay
    dropped_bytes: int = 0
    last_seq: int = 0
    last_mark: int | None = None

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def _segment_path(directory: str, start_seq: int) -> str:
    return os.path.join(directory, f"{_SEGMENT_PREFIX}{start_seq:020d}{_SEGMENT_SUFFIX}")


def _list_segments(directory: str) -> list[tuple[int, str]]:
    out = []
    try:
        entries = os.listdir(directory)
    except FileNotFoundError:
        return out
    for name in entries:
        if name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX):
            digits = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
            try:
                out.append((int(digits), os.path.join(directory, name)))
            except ValueError:
                continue
    out.sort()
    return out


def read_watermark(directory: str) -> int:
    """Return the durable watermark sequence (0 if none recorded)."""
    try:
        with open(os.path.join(directory, _WATERMARK_FILE), "r", encoding="utf-8") as fh:
            return int(json.load(fh).get("seq", 0))
    except (OSError, ValueError):
        return 0


class WriteAheadJournal:
    """Append-only CRC-framed journal with group commit and rotation.

    Not thread-safe by itself; the owning store serialises access under its
    own lock (matching every other store internal).
    """

    def __init__(self, config: JournalConfig, *, start_seq: int | None = None):
        self.config = config
        os.makedirs(config.dir, exist_ok=True)
        segments = _list_segments(config.dir)
        if start_seq is None:
            # Resume numbering after whatever the existing journal holds.
            start_seq = 1
            if segments:
                stats = RecoveryStats()
                for _ in iter_records(config.dir, stats=stats, min_seq=0):
                    pass
                start_seq = max(stats.last_seq + 1, segments[-1][0])
        self._next_seq = max(1, int(start_seq))
        self._fh: io.BufferedWriter | None = None
        self._segment_start = 0
        self._segment_bytes = 0
        self._buffer = bytearray()
        self._buffer_first_seq = 0
        self.flushed_seq = self._next_seq - 1
        self.synced_seq = self._next_seq - 1
        self._last_sync = _time.monotonic()
        # Observability counters (wired into the store's metrics registry).
        self.records = 0
        self.bytes_written = 0
        self.syncs = 0
        self.rotations = 0
        self.closed = False
        # Always begin a fresh segment: appending after a torn tail would
        # bury the tear mid-segment where recovery treats it as corruption.
        self._rotate()

    # -- encoding ---------------------------------------------------------

    def _frame(self, rtype: int, body: bytes) -> bytes:
        seq = self._next_seq
        self._next_seq += 1
        payload = _PREFIX.pack(rtype, seq) + body
        return _FRAME.pack(len(payload), crc32(payload)) + payload

    def append_names(self, names_id: int, names: Sequence[str]) -> int:
        blob = json.dumps(list(names), separators=(",", ":")).encode("utf-8")
        return self._append(REC_NAMES, struct.pack("<I", names_id) + blob)

    def append_batch(self, names_id: int, time: float, values) -> int:
        vals = np.ascontiguousarray(values, dtype=np.float64)
        body = struct.pack("<Id", names_id, float(time)) + vals.tobytes()
        return self._append(REC_BATCH, body, samples=vals.size)

    def append_many(self, name: str, times, values) -> int:
        t = np.ascontiguousarray(times, dtype=np.float64)
        v = np.ascontiguousarray(values, dtype=np.float64)
        nb = name.encode("utf-8")
        body = struct.pack("<HI", len(nb), t.size) + nb + t.tobytes() + v.tobytes()
        return self._append(REC_MANY, body, samples=t.size)

    def append_block(self, names_id: int, times, rows) -> int:
        t = np.ascontiguousarray(times, dtype=np.float64)
        r = np.ascontiguousarray(rows, dtype=np.float64)
        body = struct.pack("<III", names_id, t.size, r.shape[1] if r.ndim == 2 else 0)
        body += t.tobytes() + r.tobytes()
        return self._append(REC_BLOCK, body, samples=r.size)

    def append_mark(self, value: int) -> int:
        return self._append(REC_MARK, struct.pack("<Q", int(value)))

    # -- group commit -----------------------------------------------------

    def _append(self, rtype: int, body: bytes, *, samples: int = 0) -> int:
        if self.closed:
            raise JournalError("journal is closed")
        frame = self._frame(rtype, body)
        if not self._buffer:
            self._buffer_first_seq = self._next_seq - 1
        self._buffer += frame
        self.records += 1
        seq = self._next_seq - 1
        if self.config.sync == "always":
            self.sync()
        else:
            # The interval deadline is checked on every append, not only on
            # group boundaries: a trickle writer that never fills the group
            # buffer still gets its bounded-loss-window fsync.
            sync_due = (
                self.config.sync == "interval"
                and _time.monotonic() - self._last_sync >= self.config.sync_interval_s
            )
            if sync_due or len(self._buffer) >= self.config.group_bytes:
                self._flush_buffer()
                if sync_due:
                    self._fsync()
        return seq

    def _flush_buffer(self) -> None:
        if not self._buffer:
            return
        if self._segment_bytes >= self.config.segment_max_bytes:
            self._rotate()
        assert self._fh is not None
        self._fh.write(self._buffer)
        self._fh.flush()
        self._segment_bytes += len(self._buffer)
        self.bytes_written += len(self._buffer)
        self._buffer.clear()
        self.flushed_seq = self._next_seq - 1

    def _fsync(self) -> None:
        assert self._fh is not None
        os.fsync(self._fh.fileno())
        self.synced_seq = self.flushed_seq
        self.syncs += 1
        self._last_sync = _time.monotonic()

    def flush(self) -> int:
        """Hand buffered records to the OS (survives process kill)."""
        if not self.closed:
            self._flush_buffer()
        return self.flushed_seq

    def sync(self) -> int:
        """Flush and fsync (survives power loss). Returns the durable seq."""
        if not self.closed:
            self._flush_buffer()
            self._fsync()
        return self.synced_seq

    def _rotate(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
        self._segment_start = self._next_seq
        path = _segment_path(self.config.dir, self._segment_start)
        if os.path.exists(path):
            # A colliding segment can only be a dataless tail from a prior
            # incarnation (header-only, or fully torn): any intact record in
            # it would carry seq >= start_seq and resume numbering would have
            # moved past it.  Appending would bury a second header mid-file,
            # which recovery reads as a torn tail and then drops everything
            # after it — so replace the file outright.
            os.unlink(path)
        try:
            self._fh = open(path, "xb")
        except FileExistsError as exc:  # pragma: no cover - defensive
            raise JournalError(f"segment {path!r} already exists") from exc
        header = _HEADER.pack(
            _MAGIC, _VERSION, _ALGO_IDS[CRC_ALGO], 0, self._segment_start
        )
        self._fh.write(header)
        self._fh.flush()
        self._segment_bytes = _HEADER.size
        self.rotations += 1
        fsync_dir(self.config.dir)

    # -- truncation -------------------------------------------------------

    def mark_durable(self, seq: int, *, names=None) -> int:
        """Record that everything at or below ``seq`` is safely persisted.

        Segments wholly covered by the watermark are deleted (never the
        active one); recovery skips records at or below it.  Returns the
        number of segments pruned.

        ``names`` is the owner's live interning table
        (``{names_id: (name, ...)}``).  Pruning may delete the segments that
        held the original NAMES records, which would leave every later BATCH
        or BLOCK record unresolvable on replay — so the table is re-appended
        (registration is idempotent) before the watermark is written, at
        sequences above it, where recovery always yields it.
        """
        seq = int(seq)
        if names:
            for names_id, name_tuple in names.items():
                self.append_names(names_id, name_tuple)
            self._flush_buffer()
            if self.config.sync != "never":
                self._fsync()
        atomic_write_json(
            os.path.join(self.config.dir, _WATERMARK_FILE), {"seq": seq}, indent=None
        )
        pruned = 0
        segments = _list_segments(self.config.dir)
        for i, (start, path) in enumerate(segments):
            if start == self._segment_start:
                continue
            nxt = segments[i + 1][0] if i + 1 < len(segments) else self._segment_start
            if nxt <= seq + 1:
                try:
                    os.unlink(path)
                    pruned += 1
                except OSError:
                    pass
        if pruned:
            fsync_dir(self.config.dir)
        return pruned

    def close(self) -> None:
        if self.closed:
            return
        self._flush_buffer()
        if self._fh is not None:
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None
        self.synced_seq = self.flushed_seq
        self.closed = True


# -- recovery scan --------------------------------------------------------


def iter_records(
    directory: str,
    *,
    stats: RecoveryStats | None = None,
    min_seq: int | None = None,
) -> Iterator[tuple]:
    """Yield decoded records from a journal directory, oldest first.

    Damage degrades instead of raising: a bad frame in the *last* segment is
    a torn tail (scan stops there); a bad frame mid-journal drops the rest
    of its segment and continues.  Records with ``seq <= min_seq`` (default:
    the recorded durable watermark) are counted as skipped and not yielded —
    except NAMES interning records, which are always yielded (and also
    counted as skipped when below the watermark): registration is
    idempotent, and records above the watermark reference ids interned
    below it.

    Yields tuples keyed by record kind::

        ("names", seq, names_id, (name, ...))
        ("batch", seq, names_id, time, values)      # values: float64[k]
        ("many",  seq, name, times, values)         # float64[n] each
        ("block", seq, names_id, times, rows)       # rows: float64[n, k]
        ("mark",  seq, value)
    """
    stats = stats if stats is not None else RecoveryStats()
    if min_seq is None:
        min_seq = read_watermark(directory)
    segments = _list_segments(directory)
    for seg_idx, (start, path) in enumerate(segments):
        last_segment = seg_idx == len(segments) - 1
        try:
            data = open(path, "rb").read()
        except OSError:
            stats.torn_tail_drops += 1
            continue
        stats.segments += 1
        if len(data) < _HEADER.size:
            stats.torn_tail_drops += 1
            stats.dropped_bytes += len(data)
            continue
        magic, version, _algo, _res, hdr_seq = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC or version != _VERSION or hdr_seq != start:
            stats.corrupt_records += 1
            stats.dropped_bytes += len(data)
            continue
        off = _HEADER.size
        while off < len(data):
            if off + _FRAME.size > len(data):
                stats.torn_tail_drops += 1
                stats.dropped_bytes += len(data) - off
                break
            plen, crc = _FRAME.unpack_from(data, off)
            end = off + _FRAME.size + plen
            payload = data[off + _FRAME.size : end]
            if len(payload) != plen or crc32(payload) != crc or plen < _PREFIX.size:
                if last_segment:
                    stats.torn_tail_drops += 1
                else:
                    stats.corrupt_records += 1
                stats.dropped_bytes += len(data) - off
                break
            rtype, seq = _PREFIX.unpack_from(payload, 0)
            body = payload[_PREFIX.size:]
            off = end
            stats.records += 1
            stats.last_seq = max(stats.last_seq, seq)
            if seq <= min_seq:
                stats.skipped_records += 1
                if rtype != REC_NAMES:
                    continue
                rec = _decode(rtype, seq, body)
                if rec is None:
                    stats.corrupt_records += 1
                    continue
                yield rec
                continue
            rec = _decode(rtype, seq, body)
            if rec is None:
                stats.corrupt_records += 1
                continue
            stats.replayed_records += 1
            if rec[0] == "mark":
                stats.last_mark = rec[2]
            elif rec[0] == "batch":
                stats.replayed_samples += rec[4].size
            elif rec[0] == "many":
                stats.replayed_samples += rec[3].size
            elif rec[0] == "block":
                stats.replayed_samples += rec[4].size
            yield rec
    return


def _decode(rtype: int, seq: int, body: bytes):
    try:
        if rtype == REC_NAMES:
            (names_id,) = struct.unpack_from("<I", body, 0)
            names = tuple(json.loads(body[4:].decode("utf-8")))
            return ("names", seq, names_id, names)
        if rtype == REC_BATCH:
            names_id, t = struct.unpack_from("<Id", body, 0)
            values = np.frombuffer(body, dtype=np.float64, offset=12).copy()
            return ("batch", seq, names_id, t, values)
        if rtype == REC_MANY:
            nlen, n = struct.unpack_from("<HI", body, 0)
            name = body[6 : 6 + nlen].decode("utf-8")
            arr = np.frombuffer(body, dtype=np.float64, offset=6 + nlen)
            if arr.size != 2 * n:
                return None
            return ("many", seq, name, arr[:n].copy(), arr[n:].copy())
        if rtype == REC_BLOCK:
            names_id, n, k = struct.unpack_from("<III", body, 0)
            arr = np.frombuffer(body, dtype=np.float64, offset=12)
            if arr.size != n + n * k:
                return None
            times = arr[:n].copy()
            rows = arr[n:].reshape(n, k).copy()
            return ("block", seq, names_id, times, rows)
        if rtype == REC_MARK:
            (value,) = struct.unpack_from("<Q", body, 0)
            return ("mark", seq, value)
    except (struct.error, ValueError, UnicodeDecodeError, json.JSONDecodeError):
        return None
    return None  # unknown record type from a future version: skip, don't crash


def scan_journal(directory: str) -> RecoveryStats:
    """Scan a journal without replaying it; returns integrity statistics."""
    stats = RecoveryStats()
    for _ in iter_records(directory, stats=stats):
        pass
    return stats


# -- window checksums (anti-entropy) ---------------------------------------


def window_checksums(
    times: np.ndarray, values: np.ndarray, window_s: float, *, until: float | None = None
) -> dict[int, tuple[int, int]]:
    """Per-time-window fingerprints of a sorted series.

    Returns ``{window_index: (crc, count)}`` where ``window_index`` is
    ``floor(t / window_s)``.  Two replicas holding bit-identical samples in
    a window produce identical fingerprints, so divergence detection is one
    dict comparison instead of a full data transfer.  Windows starting at or
    after ``until`` are excluded (callers pass a cutoff so the currently
    filling window is not flagged as divergent mid-ingest).
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    t = np.asarray(times, dtype=np.float64)
    v = np.asarray(values, dtype=np.float64)
    if until is not None:
        cut = int(np.searchsorted(t, float(until), side="left"))
        t, v = t[:cut], v[:cut]
    if t.size == 0:
        return {}
    idx = np.floor_divide(t, float(window_s)).astype(np.int64)
    uniq, starts = np.unique(idx, return_index=True)
    out: dict[int, tuple[int, int]] = {}
    bounds = list(starts) + [t.size]
    for w, s, e in zip(uniq, bounds[:-1], bounds[1:]):
        crc = crc32(t[s:e].tobytes())
        crc = crc32(v[s:e].tobytes(), crc)
        out[int(w)] = (crc, int(e - s))
    return out


# -- chaos injectors -------------------------------------------------------


@dataclass
class DurabilityFaultEvent:
    """Ground-truth record of one injected durability fault."""

    kind: str
    path: str
    detail: dict = field(default_factory=dict)


def tear_wal_tail(directory: str, *, nbytes: int | None = None, rng=None) -> DurabilityFaultEvent:
    """Truncate the newest journal segment mid-record (crash mid-write)."""
    segments = _list_segments(directory)
    if not segments:
        raise JournalError(f"no journal segments under {directory!r}")
    for _start, path in reversed(segments):
        size = os.path.getsize(path)
        if size > _HEADER.size:
            break
    else:
        raise JournalError(f"journal under {directory!r} holds no records to tear")
    if nbytes is None:
        rng = rng if rng is not None else np.random.default_rng()
        nbytes = int(rng.integers(1, min(64, size - _HEADER.size) + 1))
    nbytes = max(1, min(int(nbytes), size - _HEADER.size))
    with open(path, "r+b") as fh:
        fh.truncate(size - nbytes)
    return DurabilityFaultEvent(
        "torn_wal", path, {"torn_bytes": nbytes, "new_size": size - nbytes}
    )


def corrupt_artifact(path: str, *, mode: str = "bitflip", rng=None) -> DurabilityFaultEvent:
    """Damage a persisted artifact: flip one byte or truncate the file."""
    if mode not in ("bitflip", "truncate"):
        raise ValueError(f"unknown corruption mode {mode!r}")
    rng = rng if rng is not None else np.random.default_rng()
    size = os.path.getsize(path)
    if size == 0:
        raise JournalError(f"cannot corrupt empty artifact {path!r}")
    if mode == "bitflip":
        offset = int(rng.integers(0, size))
        with open(path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ (1 << int(rng.integers(0, 8)))]))
        detail = {"offset": offset}
    else:
        keep = int(rng.integers(0, size))
        with open(path, "r+b") as fh:
            fh.truncate(keep)
        detail = {"kept_bytes": keep, "old_size": size}
    return DurabilityFaultEvent(f"corrupt_{mode}", path, detail)
