"""Shared-memory sample rings: the parent→worker ingest transport.

One :class:`SampleRing` connects the parent process (producer) to one shard
worker (consumer).  It is a bounded single-producer/single-consumer ring of
fixed-width slots backed by ``multiprocessing`` raw shared arrays, viewed as
NumPy arrays on both sides, so pushing a batch is two ``memcpy``-speed array
writes and popping is two array reads — no pickling on the hot path.

Each slot carries one (sub-)batch: the scrape timestamp, an interned
``names_id`` standing in for the batch's metric-name tuple (names travel
once over the command pipe, not per batch — LDMS-style dictionary
compression of the wire format), and up to ``slot_width`` float64 values.

Three monotonic sequence counters, each written by exactly one side:

* ``head``     — slots pushed (producer-owned),
* ``applied``  — slots consumed and applied by the worker (consumer-owned),
* ``acked``    — slots the producer may reclaim (consumer-owned).

``acked`` trails ``applied`` only under checkpoint durability, where a slot
is acknowledged once its effects are captured in an on-disk checkpoint.
Because slots are reclaimed at ``acked`` — not ``applied`` — the window
``[acked, head)`` stays intact in shared memory across a worker crash and
is replayed by the restarted worker, which is what makes acknowledged
batches durable.  A full ring (``head - acked == capacity``) is the
explicit backpressure signal surfaced via ``telemetry.runtime.*`` metrics.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Optional, Tuple

import numpy as np

__all__ = ["SampleRing"]


class SampleRing:
    """Bounded SPSC ring of fixed-width sample-batch slots in shared memory.

    Parameters
    ----------
    capacity:
        Number of slots (bounds unacknowledged batches; the backpressure
        horizon).
    slot_width:
        Maximum samples per slot.  Wider batches are chunked by the caller.
    """

    def __init__(self, capacity: int = 128, slot_width: int = 2048):
        if capacity < 1 or slot_width < 1:
            raise ValueError("capacity and slot_width must be >= 1")
        self.capacity = capacity
        self.slot_width = slot_width
        # Raw (lockless) shared arrays: SPSC with single-writer counters
        # needs no locks, and raw arrays are inheritable by child processes.
        self._raw_values = mp.RawArray("d", capacity * slot_width)
        self._raw_times = mp.RawArray("d", capacity)
        self._raw_meta = mp.RawArray("q", capacity * 2)  # (names_id, count)
        self._head = mp.RawValue("q", 0)
        self._applied = mp.RawValue("q", 0)
        self._acked = mp.RawValue("q", 0)
        self._attach_views()

    def _attach_views(self) -> None:
        self.values = np.frombuffer(self._raw_values, dtype=np.float64).reshape(
            self.capacity, self.slot_width
        )
        self.times = np.frombuffer(self._raw_times, dtype=np.float64)
        self.meta = np.frombuffer(self._raw_meta, dtype=np.int64).reshape(
            self.capacity, 2
        )

    # ------------------------------------------------------------------
    # Pickling (spawn start-method support): views are rebuilt on attach.
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        for view in ("values", "times", "meta"):
            state.pop(view, None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._attach_views()

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    @property
    def head(self) -> int:
        return self._head.value

    @property
    def applied(self) -> int:
        return self._applied.value

    @property
    def acked(self) -> int:
        return self._acked.value

    @property
    def backlog(self) -> int:
        """Slots pushed but not yet applied."""
        return self._head.value - self._applied.value

    @property
    def unacked(self) -> int:
        """Slots occupying ring space (pushed but not yet reclaimable)."""
        return self._head.value - self._acked.value

    @property
    def free_slots(self) -> int:
        return self.capacity - self.unacked

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def try_push(self, names_id: int, time: float, values: np.ndarray) -> bool:
        """Push one slot; returns ``False`` (backpressure) when full.

        ``values`` must be 1-D float64 with ``size <= slot_width``.
        """
        head = self._head.value
        if head - self._acked.value >= self.capacity:
            return False
        slot = head % self.capacity
        n = values.shape[0]
        self.values[slot, :n] = values
        self.times[slot] = time
        self.meta[slot, 0] = names_id
        self.meta[slot, 1] = n
        # Publish after the slot contents are in place (single producer).
        self._head.value = head + 1
        return True

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def read_slot(self, seq: int) -> Tuple[int, float, np.ndarray]:
        """Read slot ``seq`` (must satisfy ``acked <= seq < head``).

        Returns ``(names_id, time, values_view)``; the values view is only
        valid until the slot is reclaimed (``acked`` advancing past it), so
        consumers must copy before holding on to it.
        """
        slot = seq % self.capacity
        names_id = int(self.meta[slot, 0])
        n = int(self.meta[slot, 1])
        return names_id, float(self.times[slot]), self.values[slot, :n]

    def mark_applied(self, seq: int) -> None:
        """Advance the applied watermark to ``seq`` (consumer only)."""
        self._applied.value = seq

    def mark_acked(self, seq: int) -> None:
        """Advance the reclaim watermark to ``seq`` (consumer only)."""
        self._acked.value = seq

    def reset_consumer(self, seq: Optional[int] = None) -> None:
        """Rewind the consumer cursor after a worker restart.

        The restarted worker resumes from ``acked`` (the last durable
        point); everything in ``[acked, head)`` is replayed.
        """
        self._applied.value = self._acked.value if seq is None else seq
