"""Shard worker process: ring consumer, columnar stager, command server.

Each worker owns one real :class:`~repro.telemetry.distributed.replica.ReplicaSet`
(primary + replicas) and runs a single loop that

1. drains its :class:`~repro.telemetry.runtime.ring.SampleRing` — the hot
   path — staging samples into per-shape columnar blocks
   (:class:`BlockStager`) that are applied to member stores in one
   vectorized ``append_many`` per series instead of the per-sample Python
   loop of the in-process path (this is where the parallel runtime's
   throughput win comes from, even on one core),
2. serves commands from the parent over a pipe (reads, flushes, fault
   injection, checkpoints, shutdown).  Every command carries the ring
   sequence the parent had published when it sent the command; the worker
   drains the ring to that point and flushes stagers before executing, so
   a read observes every batch acknowledged to the producer before it —
   queries are linearized against ingest despite the async transport.

Durability is selected by the parent:

* ``"none"`` — a slot is acknowledged as soon as it is applied; a worker
  crash loses the shard's in-memory contents (replayed data is only what
  is still unreclaimed in the ring).  Fast, honest, counted.
* ``"checkpoint"`` — member stores are checkpointed to ``.npz`` every
  ``checkpoint_interval`` slots and ``acked`` only advances to the
  checkpointed sequence, so the ring retains everything newer.  After a
  crash the parent restarts the worker, which reloads the checkpoint and
  replays ``[max(acked, checkpoint_seq), head)`` — no acknowledged batch
  is ever lost.
* ``"wal"`` — every applied ring slot is framed into a per-shard
  write-ahead journal (:mod:`repro.telemetry.durability`) *before* it is
  staged, and ``acked`` advances only after the journal buffer reaches
  the OS — so acknowledgement costs one buffered file write instead of a
  full ``.npz`` checkpoint, and the columnar stager batches freely
  between acks.  A restarted worker replays the journal into its healthy
  members (periodic MARK records anchor journal records to ring
  sequences) and then resumes the ring from the journal frontier.
  Explicit checkpoints still persist ``.npz`` snapshots when a
  ``checkpoint_dir`` is configured, and prune journal segments wholly
  covered by the snapshot.

When any member is down or degraded the stager is flushed and ingest falls
back to per-slot :meth:`ReplicaSet.ingest`, so fault bookkeeping
(``missed_writes``/``dropped_writes``/``lost_batches``) is sample-exact
and identical to the in-process tier.
"""

from __future__ import annotations

import gc
import json
import os
import traceback
from collections import deque
from typing import Dict, Optional, Tuple

import numpy as np

from repro.ioutil import atomic_write_json
from repro.telemetry.distributed.replica import ReplicaSet
from repro.telemetry.durability import (
    JournalConfig,
    RecoveryStats,
    WriteAheadJournal,
    iter_records,
    read_watermark,
)
from repro.telemetry.persistence import load_store, save_store
from repro.telemetry.runtime.ring import SampleRing
from repro.telemetry.sample import SampleBatch
from repro.telemetry.store import TimeSeriesStore

__all__ = ["BlockStager", "ShardWorker", "worker_main"]

#: Flush a shape's block once it stages this many samples (rows × series).
_BLOCK_SAMPLE_CAP = 1 << 20
#: Hard row cap per block regardless of width.
_BLOCK_ROW_CAP = 8192


class _Block:
    """Columnar staging for one registered name-tuple: times + row matrix."""

    __slots__ = ("names", "times", "rows", "n", "overwrites")

    def __init__(self, names: Tuple[str, ...], capacity: int = 64):
        self.names = names
        self.times = np.empty(capacity, dtype=np.float64)
        self.rows = np.empty((capacity, len(names)), dtype=np.float64)
        self.n = 0
        self.overwrites = 0

    def push(self, time: float, values: np.ndarray) -> bool:
        """Stage one batch row; returns False on out-of-order time."""
        n = self.n
        if n:
            last = self.times[n - 1]
            if time == last:
                # Last writer wins, exactly like store staging.
                self.rows[n - 1] = values
                self.overwrites += len(self.names)
                return True
            if time < last:
                return False
        if n == self.times.shape[0]:
            cap = n * 2
            times = np.empty(cap, dtype=np.float64)
            rows = np.empty((cap, len(self.names)), dtype=np.float64)
            times[:n] = self.times[:n]
            rows[:n] = self.rows[:n]
            self.times, self.rows = times, rows
        self.times[n] = time
        self.rows[n] = values
        self.n = n + 1
        return True

    @property
    def staged_samples(self) -> int:
        return self.n * len(self.names)


class BlockStager:
    """Per-shape columnar staging with cross-shape conflict flushing.

    Scrapes re-publish the same name tuple every period, so staging by
    registered shape id turns ingest into one row write per batch.  Two
    shapes sharing a series name must not interleave unflushed (per-series
    order would be lost), so staging into shape X first flushes any active
    block whose name set overlaps X's — overlap is computed once per shape
    pair and cached.
    """

    def __init__(self, replica_set: ReplicaSet):
        self._rs = replica_set
        self._names: Dict[int, Tuple[str, ...]] = {}
        self._name_sets: Dict[int, frozenset] = {}
        self._blocks: Dict[int, _Block] = {}
        self._overlap: Dict[Tuple[int, int], bool] = {}
        self.errors = 0

    def register(self, names_id: int, names: Tuple[str, ...]) -> None:
        self._names[names_id] = tuple(names)
        self._name_sets[names_id] = frozenset(names)

    def knows(self, names_id: int) -> bool:
        return names_id in self._names

    def names_for(self, names_id: int) -> Tuple[str, ...]:
        return self._names[names_id]

    def _conflicts(self, a: int, b: int) -> bool:
        key = (a, b) if a < b else (b, a)
        hit = self._overlap.get(key)
        if hit is None:
            hit = self._overlap[key] = not self._name_sets[a].isdisjoint(
                self._name_sets[b]
            )
        return hit

    def stage(self, names_id: int, time: float, values: np.ndarray) -> None:
        """Stage one ring slot (hot path)."""
        block = self._blocks.get(names_id)
        if block is None:
            for other_id in [
                i for i in self._blocks if self._conflicts(names_id, i)
            ]:
                self.flush_block(other_id)
            block = self._blocks[names_id] = _Block(self._names[names_id])
        if not block.push(time, values):
            # Out-of-order inside the async path cannot propagate to the
            # publisher; count and drop rather than kill the worker.
            self.errors += 1
            return
        if (
            block.staged_samples >= _BLOCK_SAMPLE_CAP
            or block.n >= _BLOCK_ROW_CAP
        ):
            self.flush_block(names_id)

    def flush_block(self, names_id: int) -> None:
        block = self._blocks.pop(names_id, None)
        if block is None or not block.n:
            return
        times = block.times[: block.n]
        rows = block.rows[: block.n]
        rs = self._rs
        if any(rs._down):
            # Defensive: blocks never accumulate while a fault is active,
            # but if one is flushed into a degraded set anyway, go through
            # the replica layer so missed-write accounting stays exact.
            for j, name in enumerate(block.names):
                try:
                    rs.append_many(name, times, rows[:, j])
                except Exception:
                    self.errors += 1
        else:
            # All members healthy: one columnar apply per member replaces
            # len(names) per-series calls — the fleet-scrape fast path.
            for member in rs.members:
                try:
                    member.append_block(block.names, times, rows)
                except Exception:
                    self.errors += 1
        if block.overwrites:
            # append_many counts appended rows; the in-process staged path
            # counts every sample of every batch including last-writer-wins
            # overwrites.  Re-add the difference so samples_ingested agrees
            # with the in-process tier.
            for i, member in enumerate(rs.members):
                if not rs.is_down(i):
                    member.samples_ingested += block.overwrites

    def flush(self) -> None:
        for names_id in list(self._blocks):
            self.flush_block(names_id)

    @property
    def staged_samples(self) -> int:
        return sum(b.staged_samples for b in self._blocks.values())


class ShardWorker:
    """The event loop run inside each shard worker process."""

    def __init__(
        self,
        shard_id: int,
        ring: SampleRing,
        conn,
        replication: int,
        store_config: dict,
        durability: str = "none",
        checkpoint_dir: Optional[str] = None,
        checkpoint_interval: int = 256,
        names_table: Optional[Dict[int, Tuple[str, ...]]] = None,
        fault_state: Optional[dict] = None,
    ):
        self.shard_id = shard_id
        self.ring = ring
        self.conn = conn
        self.durability = durability
        self.checkpoint_dir = checkpoint_dir
        # A checkpoint must trigger well before the ring fills, or the
        # producer would block on unacked slots that can only be released
        # by a checkpoint that never comes.
        self.checkpoint_interval = min(
            checkpoint_interval, max(1, ring.capacity // 2)
        )
        # The shard journal replaces per-member journaling inside workers:
        # one WAL covers the whole replica set (members hold identical
        # data), so the member stores are built journal-free.
        store_config = dict(store_config)
        journal = store_config.pop("journal", None)
        self.wal: Optional[WriteAheadJournal] = None
        self._wal_cfg: Optional[JournalConfig] = None
        self._wal_names: set = set()
        self.recovery: Optional[RecoveryStats] = None
        if durability == "wal":
            if journal is not None:
                wal_dir = os.path.join(
                    journal["base_dir"], f"shard{shard_id}", "wal"
                )
                tuning = {
                    k: journal[k]
                    for k in (
                        "segment_max_bytes",
                        "sync",
                        "sync_interval_s",
                        "group_bytes",
                    )
                    if k in journal
                }
            elif checkpoint_dir:
                wal_dir, tuning = os.path.join(checkpoint_dir, "wal"), {}
            else:
                raise ValueError(
                    "durability='wal' requires a journal base dir or a "
                    "checkpoint_dir"
                )
            self._wal_cfg = JournalConfig(dir=wal_dir, **tuning)
        self.rs = ReplicaSet(
            shard_id,
            replication,
            store_factory=lambda: TimeSeriesStore(**store_config),
        )
        self.stager = BlockStager(self.rs)
        self._degrade_rng: Optional[np.random.Generator] = None
        self.slots_applied = 0
        self.slots_replayed = 0
        self._running = True
        self._pending: deque = deque()
        # Restart support: a replacement worker receives the parent's full
        # name-interning table and fault-state mirror up front, because the
        # ring may already hold slots to replay that reference shapes (and
        # fault semantics) registered with the previous incarnation.
        for names_id, names in (names_table or {}).items():
            self.stager.register(names_id, tuple(names))
        if fault_state:
            for member, down in enumerate(fault_state.get("down", [])):
                if down:
                    self.rs.mark_down(member)
            fractions = fault_state.get("drop_fraction", [])
            if any(f > 0.0 for f in fractions):
                self._degrade_rng = np.random.default_rng(
                    fault_state.get("degrade_seed", 0)
                )
                for member, fraction in enumerate(fractions):
                    if fraction > 0.0:
                        self.rs.degrade(fraction, self._degrade_rng, member)

    # ------------------------------------------------------------------
    # Recovery / checkpointing
    # ------------------------------------------------------------------
    def _manifest_path(self) -> str:
        return os.path.join(self.checkpoint_dir, "manifest.json")

    def _member_path(self, member: int) -> str:
        return os.path.join(self.checkpoint_dir, f"member{member}.npz")

    def _load_manifest(self) -> Optional[dict]:
        if not self.checkpoint_dir:
            return None
        manifest = self._manifest_path()
        if not os.path.exists(manifest):
            return None
        with open(manifest) as fh:
            meta = json.load(fh)
        for i in range(len(self.rs.members)):
            path = self._member_path(i)
            if os.path.exists(path):
                self.rs.members[i] = load_store(path)
        return meta

    def recover(self) -> None:
        """Resume the consumer cursor; reload durable state if any exists.

        Slots at or before the checkpointed sequence are already durable in
        the reloaded stores, so replay starts at
        ``max(acked, checkpoint_seq)`` — this also covers a crash that
        landed between writing a checkpoint and advancing ``acked``.
        Under ``"wal"`` durability the journal is replayed on top of the
        (optional) checkpoint and replay resumes from the journal frontier.
        """
        resume = self.ring.acked
        if self.durability == "checkpoint" and self.checkpoint_dir:
            meta = self._load_manifest()
            if meta is not None:
                resume = max(resume, int(meta.get("seq", 0)))
        elif self.durability == "wal":
            resume = max(resume, self._recover_wal())
            self.wal = WriteAheadJournal(self._wal_cfg)
            # Anchor this incarnation's records: batches that follow map to
            # ring sequences counted up from this mark.
            self.wal.append_mark(resume)
            self.wal.flush()
        if resume > self.ring.acked:
            self.ring.mark_acked(resume)
        self.slots_replayed = self.ring.head - resume
        self.ring.reset_consumer(resume)

    def _recover_wal(self) -> int:
        """Replay the shard journal into healthy members; return the ring
        sequence the journal covers.

        MARK records carry the ring sequence acknowledged when they were
        written; each BATCH record between marks advances the position by
        one slot, so the journal frontier is exact even after a torn tail.
        Records at or below the checkpoint's ``wal_seq`` are already inside
        the reloaded ``.npz`` snapshot and are skipped.  Replay stops at
        the first sequence gap (damage mid-journal): everything past it is
        left to the ring replay window, which still covers ``[acked, head)``.
        """
        stats = RecoveryStats()
        self.recovery = stats
        base_seq = 0
        wal_cut = read_watermark(self._wal_cfg.dir)
        meta = self._load_manifest()
        if meta is not None:
            base_seq = int(meta.get("seq", 0))
            wal_cut = max(wal_cut, int(meta.get("wal_seq", 0)))
        healthy = [
            m for i, m in enumerate(self.rs.members) if not self.rs.is_down(i)
        ]
        resume = base_seq
        pos: Optional[int] = None
        expected: Optional[int] = None
        pend_id: Optional[int] = None
        pend_times: list = []
        pend_rows: list = []

        def flush_pending() -> None:
            nonlocal pend_id
            if pend_id is None or not pend_times:
                pend_id = None
                return
            times = np.asarray(pend_times, dtype=np.float64)
            rows = np.vstack(pend_rows)
            names = self.stager.names_for(pend_id)
            for member in healthy:
                member.append_block(names, times, rows)
            pend_id = None
            pend_times.clear()
            pend_rows.clear()

        for rec in iter_records(
            self._wal_cfg.dir, stats=stats, min_seq=wal_cut
        ):
            kind, seq = rec[0], rec[1]
            if kind == "names" and seq <= wal_cut:
                # Interning records below the watermark are re-yielded so
                # later batches stay resolvable; they sit outside the
                # contiguous above-watermark chain, so register them
                # without touching the gap check.
                self.stager.register(rec[2], tuple(rec[3]))
                continue
            if expected is not None and seq != expected:
                break
            expected = seq + 1
            if kind == "names":
                self.stager.register(rec[2], tuple(rec[3]))
            elif kind == "mark":
                flush_pending()
                pos = int(rec[2])
                resume = max(resume, pos)
            elif kind == "batch":
                _, _, names_id, time, values = rec
                if pos is None:
                    # The anchoring mark was pruned with its segment at the
                    # last checkpoint; batches resume exactly at its seq.
                    pos = base_seq
                if pos >= base_seq:
                    if not self.stager.knows(names_id):
                        # The NAMES record for this id was lost with the
                        # damaged prefix: treat it like a sequence gap and
                        # stop, so the remaining slots fall back to ring
                        # replay instead of being advanced past as applied.
                        break
                    if pend_id != names_id:
                        flush_pending()
                        pend_id = names_id
                    pend_times.append(time)
                    pend_rows.append(values)
                pos += 1
                resume = max(resume, pos)
            elif kind == "many":
                flush_pending()
                _, _, name, times, values = rec
                for member in healthy:
                    member.append_many(name, times, values)
        flush_pending()
        return resume

    def _wal_ack(self) -> int:
        """Acknowledge everything applied: one MARK plus a buffer flush.

        The flush hands the journal to the OS, which survives a worker
        kill (the crash model restarts cover); the sync policy in the
        journal config governs fsync cadence for power-loss durability.
        """
        applied = self.ring.applied
        self.wal.append_mark(applied)
        self.wal.flush()
        self.ring.mark_acked(applied)
        return applied

    def checkpoint(self) -> int:
        """Flush everything and persist member stores; advance ``acked``.

        Returns the acknowledged sequence.  Only after the manifest (the
        commit record) is fully written does ``acked`` move, so a crash
        mid-checkpoint replays from the previous one.  Under ``"wal"``
        durability the ``.npz`` snapshot is written only when a
        ``checkpoint_dir`` is configured, and journal segments wholly
        covered by the snapshot are pruned.
        """
        applied = self.ring.applied
        self.stager.flush()
        self.rs.flush()
        if self.durability == "checkpoint" and self.checkpoint_dir:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
            for i, member in enumerate(self.rs.members):
                save_store(member, self._member_path(i))
            atomic_write_json(
                self._manifest_path(),
                {"seq": applied, "shard": self.shard_id},
            )
        elif self.durability == "wal" and self.wal is not None:
            self.wal.append_mark(applied)
            wal_seq = self.wal.flush()
            if self.checkpoint_dir:
                os.makedirs(self.checkpoint_dir, exist_ok=True)
                for i, member in enumerate(self.rs.members):
                    save_store(member, self._member_path(i))
                atomic_write_json(
                    self._manifest_path(),
                    {
                        "seq": applied,
                        "shard": self.shard_id,
                        "wal_seq": wal_seq,
                    },
                )
                # Pass the journaled interning table: pruning may delete
                # the segments holding the original NAMES records while
                # post-checkpoint batches still reference those ids.
                self.wal.mark_durable(
                    wal_seq,
                    names={
                        nid: self.stager.names_for(nid)
                        for nid in sorted(self._wal_names)
                    },
                )
        self.ring.mark_acked(applied)
        return applied

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    @property
    def _fault_active(self) -> bool:
        return any(self.rs._down) or any(
            f > 0.0 for f in self.rs._drop_fraction
        )

    def _resolve_names(self, names_id: int) -> None:
        """Wait for an in-flight shape registration.

        The parent always sends ``("reg", …)`` down the pipe *before*
        pushing any slot that references the shape, but the ring drain can
        outrun the pipe read — so an unknown id means the registration is
        already in flight: pull pipe messages (stashing any command for the
        serve loop) until it lands.
        """
        while not self.stager.knows(names_id):
            if self.conn.poll(5.0):
                msg = self.conn.recv()
                if msg[0] == "reg":
                    self.stager.register(msg[1], tuple(msg[2]))
                else:
                    self._pending.append(msg)
            else:
                raise KeyError(
                    f"shard {self.shard_id}: names_id {names_id} was never "
                    "registered"
                )

    def _apply_slot(self, seq: int) -> None:
        names_id, time, values = self.ring.read_slot(seq)
        if not self.stager.knows(names_id):
            self._resolve_names(names_id)
        if self.wal is not None:
            # Journal before mutate: the WAL record is the durable copy of
            # this slot until the next checkpoint, including slots a down
            # member misses (replay only feeds healthy members, mirroring
            # the fault accounting taken below).
            if names_id not in self._wal_names:
                self.wal.append_names(
                    names_id, self.stager.names_for(names_id)
                )
                self._wal_names.add(names_id)
            self.wal.append_batch(names_id, time, values)
        if self._fault_active:
            # Exact per-batch fault bookkeeping: go through the replica
            # set's own ingest so missed/dropped/lost counters match the
            # in-process tier sample for sample.
            self.stager.flush()
            names = self.stager.names_for(names_id)
            try:
                self.rs.ingest("", SampleBatch(time, names, values.copy()))
            except Exception:
                self.stager.errors += 1
        else:
            self.stager.stage(names_id, time, values)
        self.slots_applied += 1

    def drain(self, upto: Optional[int] = None) -> int:
        """Apply ring slots up to ``upto`` (default: everything pushed)."""
        target = self.ring.head if upto is None else upto
        seq = self.ring.applied
        applied = 0
        instant_ack = self.durability == "none"
        while seq < target:
            self._apply_slot(seq)
            seq += 1
            self.ring.mark_applied(seq)
            if instant_ack:
                # Ack per slot so a producer blocked on a full ring sees
                # space free up mid-drain.
                self.ring.mark_acked(seq)
            applied += 1
        if (
            applied
            and not instant_ack
            and seq - self.ring.acked >= self.checkpoint_interval
        ):
            if self.durability == "wal":
                self._wal_ack()
            else:
                self.checkpoint()
        return applied

    # ------------------------------------------------------------------
    # Command server
    # ------------------------------------------------------------------
    def _stat(self, member: int, attr: str) -> float:
        store = self.rs.members[member]
        if attr == "len":
            return float(len(store))
        return float(getattr(store, attr))

    def _rs_stats(self) -> dict:
        return {
            "down": list(self.rs._down),
            "drop_fraction": list(self.rs._drop_fraction),
            "missed_writes": list(self.rs.missed_writes),
            "dropped_writes": list(self.rs.dropped_writes),
            "lost_batches": self.rs.lost_batches,
            "lost_samples": self.rs.lost_samples,
            "failover_reads": self.rs.failover_reads,
            "resync_failures": getattr(self.rs, "resync_failures", 0),
            "samples_ingested": [m.samples_ingested for m in self.rs.members],
            "series": [len(m) for m in self.rs.members],
            "latest_time": [m.latest_time for m in self.rs.members],
            "slots_applied": self.slots_applied,
            "slots_replayed": self.slots_replayed,
            "stager_errors": self.stager.errors,
            "staged_samples": self.stager.staged_samples,
            "anti_entropy_sweeps": self.rs.anti_entropy_sweeps,
            "diverged_windows": self.rs.diverged_windows,
            "repaired_windows": self.rs.repaired_windows,
            "repaired_samples": list(self.rs.repaired_samples),
            "recovered_samples": (
                self.recovery.replayed_samples if self.recovery else 0
            ),
            "wal_records": self.wal.records if self.wal else 0,
            "wal_bytes": self.wal.bytes_written if self.wal else 0,
        }

    def _execute(self, op: str, payload: tuple):
        rs = self.rs
        if op == "ping":
            return "pong"
        if op == "query":
            member, name, since, until = payload
            t, v = rs.members[member].query(name, since, until)
            return t.copy(), v.copy()
        if op == "series":
            member, name = payload
            buf = rs.members[member].series(name)
            return buf.times.copy(), buf.values.copy()
        if op == "names":
            return rs.members[payload[0]].names()
        if op == "select":
            member, pattern = payload
            return rs.members[member].select(pattern)
        if op == "contains":
            member, name = payload
            return name in rs.members[member]
        if op == "latest":
            member, name = payload
            return rs.members[member].latest(name)
        if op == "value_at":
            member, name, time = payload
            return rs.members[member].value_at(name, time)
        if op == "resample":
            member, name, since, until, step, agg, engine = payload
            grid, vals = rs.members[member].resample(
                name, since, until, step, agg=agg, engine=engine
            )
            return grid, vals
        if op == "resample_column":
            member, name, since, until, step, agg, engine, edges = payload
            return rs.members[member].resample_column(
                name, since, until, step, agg, engine, edges
            )
        if op == "align":
            member, names, since, until, step, agg, fill, engine = payload
            grid, matrix = rs.members[member].align(
                names, since, until, step, agg=agg, fill=fill, engine=engine
            )
            return grid, matrix
        if op == "stat":
            return self._stat(*payload)
        if op == "version":
            return tuple(rs.members[payload[0]].version_stamp())
        if op == "member_flush":
            member, name = payload
            return rs.members[member].flush(name)
        if op == "flush":
            return rs.flush()
        if op == "append":
            name, time, value = payload
            if self.wal is not None:
                self.wal.append_many(name, (float(time),), (float(value),))
            rs.append(name, time, value)
            return None
        if op == "append_many":
            name, times, values = payload
            if self.wal is not None:
                self.wal.append_many(name, times, values)
            rs.append_many(name, times, values)
            return None
        if op == "mark_down":
            self.stager.flush()
            rs.mark_down(payload[0])
            return None
        if op == "degrade":
            member, fraction, seed = payload
            self.stager.flush()
            if self._degrade_rng is None:
                self._degrade_rng = np.random.default_rng(seed)
            rs.degrade(fraction, self._degrade_rng, member)
            return None
        if op == "revive":
            member, resync = payload
            rs.revive(member, resync=resync)
            return None
        if op == "rs_stats":
            return self._rs_stats()
        if op == "anti_entropy":
            window_s, now = payload
            self.stager.flush()
            return rs.anti_entropy(window_s=window_s, now=now)
        if op == "sync_journal":
            if self.wal is None:
                return 0
            self.stager.flush()
            return self.wal.sync()
        if op == "checkpoint":
            return self.checkpoint()
        if op == "crash":
            # Chaos hook: die like a SIGKILLed daemon — no flush, no
            # checkpoint, no reply.
            os._exit(17)
        if op == "stop":
            if self.durability in ("checkpoint", "wal"):
                self.checkpoint()
                if self.wal is not None:
                    self.wal.close()
            else:
                self.stager.flush()
                rs.flush()
                self.ring.mark_acked(self.ring.applied)
            self._running = False
            return self.slots_applied
        raise ValueError(f"unknown worker op {op!r}")

    def _serve_one(self, msg) -> None:
        kind = msg[0]
        if kind == "reg":
            _, names_id, names = msg
            self.stager.register(names_id, tuple(names))
            return
        _, seq, op, payload = msg
        # Linearize: apply everything the parent had pushed before this
        # command, then make it visible to reads.
        self.drain(upto=max(seq, self.ring.applied))
        self.stager.flush()
        try:
            result = self._execute(op, payload)
        except Exception as exc:  # propagate as (type, message)
            self.conn.send(
                ("err", type(exc).__name__, f"{exc}", traceback.format_exc())
            )
            return
        self.conn.send(("ok", result))

    def run(self) -> None:
        self.recover()
        conn = self.conn
        ring = self.ring
        while self._running:
            if self._pending:
                self._serve_one(self._pending.popleft())
                continue
            if ring.applied < ring.head:
                self.drain()
                if conn.poll(0):
                    self._serve_one(conn.recv())
                continue
            # Idle: the poll timeout doubles as the sleep — no busy wait.
            if conn.poll(0.002):
                self._serve_one(conn.recv())


def worker_main(
    shard_id: int,
    ring: SampleRing,
    conn,
    replication: int,
    store_config: dict,
    durability: str,
    checkpoint_dir: Optional[str],
    checkpoint_interval: int,
    names_table: Optional[Dict[int, Tuple[str, ...]]] = None,
    fault_state: Optional[dict] = None,
) -> None:
    """Process entry point for one shard worker."""
    # Freeze the heap inherited from the fork: the parent may be large, and
    # without this every worker's GC cycles walk (and copy-on-write dirty)
    # the whole inherited object graph — ruinous with many workers sharing
    # one core.  Frozen objects are permanent here; the worker's own
    # allocations are still collected normally.
    gc.freeze()
    worker = ShardWorker(
        shard_id,
        ring,
        conn,
        replication,
        store_config,
        durability=durability,
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=checkpoint_interval,
        names_table=names_table,
        fault_state=fault_state,
    )
    try:
        worker.run()
    except (KeyboardInterrupt, EOFError, BrokenPipeError):
        pass
