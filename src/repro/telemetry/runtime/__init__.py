"""Process-parallel shard runtime for the distributed telemetry tier.

Moves each shard's :class:`~repro.telemetry.distributed.replica.ReplicaSet`
into a worker process fed by shared-memory NumPy ring buffers with an
async, batched, backpressured ingest path — the scalable-collection
building block the paper's framework calls for, patterned on LDMS's
daemon-per-node aggregation topology.

Entry point for most users is ``ShardedStore(parallel=True, ...)`` (or
``repro simulate --parallel``); the classes here are the machinery behind
it.
"""

from repro.telemetry.runtime.parallel import (
    ParallelReplicaSet,
    ParallelShardRuntime,
    RemoteStoreProxy,
    RuntimeConfig,
)
from repro.telemetry.runtime.ring import SampleRing
from repro.telemetry.runtime.worker import BlockStager, ShardWorker, worker_main

__all__ = [
    "ParallelShardRuntime",
    "ParallelReplicaSet",
    "RemoteStoreProxy",
    "RuntimeConfig",
    "SampleRing",
    "BlockStager",
    "ShardWorker",
    "worker_main",
]
