"""Parent-side parallel shard runtime: producers, proxies, lifecycle.

:class:`ParallelShardRuntime` owns one worker process per shard (LDMS-style
daemon-per-partition aggregation), each fed by a shared-memory
:class:`~repro.telemetry.runtime.ring.SampleRing` and controlled over a
pipe.  The pieces the rest of the codebase sees:

* :class:`ParallelReplicaSet` — drop-in replacement for
  :class:`~repro.telemetry.distributed.replica.ReplicaSet`: same write
  semantics (never raises; fault bookkeeping is sample-exact because the
  worker falls back to real ``ReplicaSet.ingest`` while faults are
  active), same read failover, same ``telemetry.shard.<i>.*`` metrics.
* :class:`RemoteStoreProxy` — read-side stand-in for a member
  :class:`~repro.telemetry.store.TimeSeriesStore`.  Raw range queries
  fetch sample arrays over the pipe; ``resample``/``align`` execute *in
  the worker* (one command round trip), where the member store's rollup
  planner can serve buckets from materialized tiers and only the reduced
  buckets cross the pipe.  Either way the same shared kernels run on the
  same samples, so federated results are bit-identical to the in-process
  path by construction.

Backpressure is explicit: a full ring makes the producer wait (bounded by
``push_timeout``) and then *drop and count* rather than raise — the same
never-raise write contract as the in-process replica tier — and every
state of the pipeline is observable via the ``telemetry.runtime.*``
registry (pushed/dropped batches, waits, backlog, worker crashes/restarts,
replayed slots).

Worker death is detected by :meth:`ParallelShardRuntime.check_workers`
(polled by the :class:`~repro.oda.supervision.Supervisor` watchdog once
wired via ``watch_runtime``) and heals by restarting the worker: the
replacement inherits the name-interning table and fault mirror, reloads
its checkpoint when durability is ``"checkpoint"``, and replays the ring
window ``[acked, head)`` that the producer never reclaimed.
"""

from __future__ import annotations

import gc
import logging
import multiprocessing as mp
import os
import threading
import time as _time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.errors as _errors
from repro.errors import ConfigurationError, ShardDownError, StoreError
from repro.obs.metrics import MetricsRegistry
from repro.telemetry.runtime.ring import SampleRing
from repro.telemetry.runtime.worker import worker_main
from repro.telemetry.sample import SampleBatch
from repro.telemetry.store import SeriesBuffer, check_resample_args

__all__ = [
    "ParallelShardRuntime",
    "ParallelReplicaSet",
    "RemoteStoreProxy",
    "RuntimeConfig",
]

log = logging.getLogger(__name__)

#: Sleep while waiting out ring backpressure / command replies.
_POLL_S = 0.0005


class RuntimeConfig:
    """Tunables for the parallel runtime (picklable plain object)."""

    def __init__(
        self,
        ring_capacity: int = 256,
        slot_width: int = 4096,
        durability: str = "none",
        checkpoint_dir: Optional[str] = None,
        checkpoint_interval: int = 64,
        push_timeout: float = 5.0,
        command_timeout: float = 60.0,
        auto_restart: bool = True,
    ):
        if durability not in ("none", "checkpoint", "wal"):
            raise ConfigurationError(
                "durability must be 'none', 'checkpoint' or 'wal', got "
                f"{durability!r}"
            )
        if durability == "checkpoint" and not checkpoint_dir:
            raise ConfigurationError(
                "durability='checkpoint' requires checkpoint_dir"
            )
        self.ring_capacity = ring_capacity
        self.slot_width = slot_width
        self.durability = durability
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_interval = checkpoint_interval
        self.push_timeout = push_timeout
        self.command_timeout = command_timeout
        self.auto_restart = auto_restart


class RemoteStoreProxy:
    """Read-side view of one member store living in a worker process.

    Mirrors the :class:`~repro.telemetry.store.TimeSeriesStore` read/flush
    surface (query/names/select/series/latest/value_at/resample/align/
    flush/len/contains plus the counters and config attributes persistence
    reads), fetching raw sample arrays over the command pipe and running
    the shared resample kernels locally — so anything computed from a
    proxy is bit-identical to computing it on the worker's actual store.
    """

    def __init__(self, runtime: "ParallelShardRuntime", shard: int, member: int):
        self._runtime = runtime
        self.shard = shard
        self.member = member

    def _call(self, op: str, *payload):
        return self._runtime._call(self.shard, op, payload)

    # -- config attributes (persistence reads these) -------------------
    @property
    def retention(self) -> Optional[float]:
        return self._runtime.store_config.get("retention")

    @property
    def retention_slack(self) -> float:
        return self._runtime.store_config.get("retention_slack", 0.25)

    @property
    def flush_threshold(self) -> int:
        return self._runtime.store_config.get("flush_threshold", 256)

    @property
    def rollup_config(self):
        val = self._runtime.store_config.get("rollups")
        if not val:
            return None
        from repro.telemetry.rollup import RollupConfig

        return RollupConfig() if val is True else RollupConfig.from_dict(val)

    @property
    def archive_config(self):
        val = self._runtime.store_config.get("archive")
        if not val:
            return None
        from repro.telemetry.archive import ArchiveConfig

        return ArchiveConfig() if val is True else ArchiveConfig.from_dict(val)

    # -- reads ---------------------------------------------------------
    def query(
        self, name: str, since: float = float("-inf"), until: float = float("inf")
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self._call("query", self.member, name, since, until)

    def names(self) -> List[str]:
        return self._call("names", self.member)

    def select(self, pattern: str) -> List[str]:
        return self._call("select", self.member, pattern)

    def series(self, name: str) -> SeriesBuffer:
        """Materialize one series locally (a copy, not a live view)."""
        times, values = self._call("series", self.member, name)
        buf = SeriesBuffer(name, capacity=max(1, times.size))
        buf.append_many(times, values)
        return buf

    def latest(self, name: str) -> Tuple[float, float]:
        return self._call("latest", self.member, name)

    def value_at(self, name: str, time: float) -> float:
        return self._call("value_at", self.member, name, time)

    def __contains__(self, name: str) -> bool:
        return bool(self._call("contains", self.member, name))

    def __len__(self) -> int:
        return int(self._call("stat", self.member, "len"))

    def flush(self, name: Optional[str] = None) -> int:
        return int(self._call("member_flush", self.member, name))

    @property
    def samples_ingested(self) -> int:
        return int(self._call("stat", self.member, "samples_ingested"))

    @property
    def staged_samples(self) -> int:
        return int(self._call("stat", self.member, "staged_samples"))

    @property
    def latest_time(self) -> float:
        return float(self._call("stat", self.member, "latest_time"))

    def version_stamp(self) -> Tuple[float, float, float, float]:
        """Per-shard ingest watermark (see
        :meth:`TimeSeriesStore.version_stamp`), read from the worker — it
        reflects exactly the ring slots the worker has applied, which is
        also exactly what its reads serve."""
        return tuple(self._call("version", self.member))

    # -- derived reads: executed worker-side (planner-aware) ------------
    def resample(
        self,
        name: str,
        since: float,
        until: float,
        step: float,
        agg: str = "mean",
        engine: str = "auto",
    ) -> Tuple[np.ndarray, np.ndarray]:
        check_resample_args(step, agg, engine)
        if until <= since:
            return np.empty(0), np.empty(0)
        return self._call(
            "resample", self.member, name, since, until, step, agg, engine
        )

    def resample_column(
        self,
        name: str,
        since: float,
        until: float,
        step: float,
        agg: str,
        engine: str,
        edges: np.ndarray,
    ) -> np.ndarray:
        """Planner-aware column primitive (see
        :meth:`TimeSeriesStore.resample_column`), executed in the worker so
        rollup tiers serve federated aligns without shipping raw arrays."""
        return self._call(
            "resample_column", self.member, name, since, until, step, agg,
            engine, np.ascontiguousarray(edges, dtype=np.float64),
        )

    def align(
        self,
        names: Sequence[str],
        since: float,
        until: float,
        step: float,
        agg: str = "mean",
        fill: str = "ffill",
        engine: str = "auto",
    ) -> Tuple[np.ndarray, np.ndarray]:
        if fill not in ("ffill", "nan"):
            raise StoreError(f"unknown fill mode {fill!r}")
        check_resample_args(step, agg, engine)
        if until <= since or not names:
            return np.empty(0), np.empty((0, len(names)))
        return self._call(
            "align", self.member, tuple(names), since, until, step, agg,
            fill, engine,
        )


class ParallelReplicaSet:
    """Parent-side stand-in for one shard's :class:`ReplicaSet`.

    Mirrors the fault topology (down/degraded members) locally so read
    routing and chaos targeting work without a round trip; write-side
    counters live in the worker and surface through cached stats.
    """

    def __init__(
        self, runtime: "ParallelShardRuntime", shard_id: int, replication: int
    ):
        self._runtime = runtime
        self.shard_id = shard_id
        self.members: List[RemoteStoreProxy] = [
            RemoteStoreProxy(runtime, shard_id, m)
            for m in range(replication + 1)
        ]
        self._down = [False] * len(self.members)
        self._drop_fraction = [0.0] * len(self.members)
        self.failover_reads = 0
        self._metrics: Optional[MetricsRegistry] = None
        self._metrics_prefix: Optional[str] = None

    # -- topology ------------------------------------------------------
    @property
    def replication(self) -> int:
        return len(self.members) - 1

    @property
    def primary(self) -> RemoteStoreProxy:
        return self.members[0]

    def is_down(self, member: int = 0) -> bool:
        return self._down[member]

    @property
    def down_members(self) -> int:
        return sum(self._down)

    @property
    def healthy_members(self) -> int:
        return len(self.members) - self.down_members

    # -- fault injection (mirrors state, forwards to the worker) -------
    def mark_down(self, member: int = 0) -> None:
        self._runtime._call(self.shard_id, "mark_down", (member,))
        self._down[member] = True
        self._runtime._bump()

    def degrade(
        self,
        drop_fraction: float,
        rng: np.random.Generator,
        member: int = 0,
    ) -> None:
        if not 0.0 <= drop_fraction <= 1.0:
            raise ConfigurationError(
                f"drop_fraction must be in [0, 1], got {drop_fraction}"
            )
        # The worker owns its own generator; hand it a seed drawn from the
        # caller's so chaos stays reproducible per run.
        seed = int(rng.integers(np.iinfo(np.int64).max))
        self._runtime._call(
            self.shard_id, "degrade", (member, drop_fraction, seed)
        )
        self._drop_fraction[member] = drop_fraction
        self._runtime._register_degrade_seed(self.shard_id, seed)
        self._runtime._bump()

    def revive(self, member: int = 0, resync: bool = True) -> None:
        self._runtime._call(self.shard_id, "revive", (member, resync))
        self._down[member] = False
        self._drop_fraction[member] = 0.0
        self._runtime._bump()

    def anti_entropy(
        self, window_s: float = 3600.0, now: Optional[float] = None
    ) -> dict:
        """One divergence-detection/repair sweep, run inside the worker
        (see :meth:`ReplicaSet.anti_entropy`); member data never crosses
        the process boundary, only the summary does."""
        out = self._runtime._call(
            self.shard_id, "anti_entropy", (window_s, now)
        )
        self._runtime._bump()
        return out

    # -- writes --------------------------------------------------------
    def ingest(self, topic: str, batch: SampleBatch) -> int:
        self._runtime.push(self.shard_id, batch)
        return self.healthy_members

    def append(self, name: str, time: float, value: float) -> None:
        self._runtime._call(self.shard_id, "append", (name, time, value))

    def append_many(
        self, name: str, times: np.ndarray, values: np.ndarray
    ) -> None:
        self._runtime._call(
            self.shard_id,
            "append_many",
            (name, np.asarray(times, dtype=np.float64),
             np.asarray(values, dtype=np.float64)),
        )

    def flush(self) -> int:
        return int(self._runtime._call(self.shard_id, "flush", ()))

    # -- reads ---------------------------------------------------------
    def read_store(self) -> RemoteStoreProxy:
        """The member currently serving reads; raises if none is healthy."""
        for i, proxy in enumerate(self.members):
            if not self._down[i]:
                if i != 0:
                    self.failover_reads += 1
                return proxy
        raise ShardDownError(
            f"shard {self.shard_id}: all {len(self.members)} members are down"
        )

    # -- observability -------------------------------------------------
    def _stats(self) -> dict:
        return self._runtime.shard_stats(self.shard_id)

    def _serving_stat(self, key: str) -> float:
        serving = next(
            (i for i in range(len(self.members)) if not self._down[i]), None
        )
        if serving is None:
            return float("nan")
        try:
            return float(self._stats()[key][serving])
        except (ShardDownError, StoreError):
            return float("nan")

    def _summed_stat(self, key: str) -> float:
        try:
            stats = self._stats()[key]
        except (ShardDownError, StoreError):
            return float("nan")
        return float(sum(stats) if isinstance(stats, list) else stats)

    def metrics_registry(self, prefix: str) -> MetricsRegistry:
        """Same instrument set as :meth:`ReplicaSet.metrics_registry`."""
        if self._metrics is None or self._metrics_prefix != prefix:
            r = MetricsRegistry()
            r.counter(f"{prefix}.samples", "samples on the serving member",
                      fn=lambda: self._serving_stat("samples_ingested"))
            r.gauge(f"{prefix}.series", "series on the serving member",
                    fn=lambda: self._serving_stat("series"))
            r.gauge(f"{prefix}.down_members", "members currently down",
                    fn=lambda: float(self.down_members))
            r.counter(f"{prefix}.missed_writes",
                      "writes missed by down members",
                      fn=lambda: self._summed_stat("missed_writes"))
            r.counter(f"{prefix}.dropped_writes",
                      "writes shed by degraded members",
                      fn=lambda: self._summed_stat("dropped_writes"))
            r.counter(f"{prefix}.lost_samples",
                      "samples lost with every member down",
                      fn=lambda: self._summed_stat("lost_samples"))
            r.counter(f"{prefix}.failover_reads",
                      "reads served by a non-primary member",
                      fn=lambda: float(self.failover_reads))
            r.counter(f"{prefix}.resync_failed",
                      "revivals that found no healthy peer to resync from",
                      fn=lambda: self._summed_stat("resync_failures"))
            r.counter(f"{prefix}.diverged_windows",
                      "replica windows found diverged by anti-entropy",
                      fn=lambda: self._summed_stat("diverged_windows"))
            r.counter(f"{prefix}.repaired_windows",
                      "replica windows repaired by anti-entropy",
                      fn=lambda: self._summed_stat("repaired_windows"))
            r.counter(f"{prefix}.repaired_samples",
                      "samples restored into members by anti-entropy",
                      fn=lambda: self._summed_stat("repaired_samples"))
            self._metrics = r
            self._metrics_prefix = prefix
        return self._metrics

    def health_metrics(self, prefix: str) -> dict:
        return self.metrics_registry(prefix).snapshot()

    # -- worker-side counters (tests / introspection) ------------------
    @property
    def missed_writes(self) -> List[int]:
        return list(self._stats()["missed_writes"])

    @property
    def dropped_writes(self) -> List[int]:
        return list(self._stats()["dropped_writes"])

    @property
    def lost_batches(self) -> int:
        return int(self._stats()["lost_batches"])

    @property
    def lost_samples(self) -> int:
        return int(self._stats()["lost_samples"])

    @property
    def resync_failures(self) -> int:
        return int(self._stats()["resync_failures"])

    @property
    def anti_entropy_sweeps(self) -> int:
        return int(self._stats()["anti_entropy_sweeps"])

    @property
    def diverged_windows(self) -> int:
        return int(self._stats()["diverged_windows"])

    @property
    def repaired_windows(self) -> int:
        return int(self._stats()["repaired_windows"])

    @property
    def repaired_samples(self) -> List[int]:
        return list(self._stats()["repaired_samples"])

    @property
    def recovered_samples(self) -> int:
        """Samples the current worker incarnation replayed from its WAL."""
        return int(self._stats().get("recovered_samples", 0))


class ParallelShardRuntime:
    """One worker process per shard, fed by shared-memory sample rings."""

    def __init__(
        self,
        shards: int,
        replication: int,
        store_config: dict,
        config: Optional[RuntimeConfig] = None,
    ):
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.replication = replication
        self.store_config = dict(store_config)
        self.config = config or RuntimeConfig()
        if self.config.durability == "wal" and not (
            self.store_config.get("journal") or self.config.checkpoint_dir
        ):
            raise ConfigurationError(
                "durability='wal' requires a journal base dir in the store "
                "config or a checkpoint_dir"
            )
        self._ctx = mp.get_context()
        self.rings: List[SampleRing] = [
            SampleRing(self.config.ring_capacity, self.config.slot_width)
            for _ in range(shards)
        ]
        self._conns: List = [None] * shards
        self._procs: List = [None] * shards
        # One RPC lock per shard pipe: a command is a send-then-recv pair on
        # a Connection shared by every reader thread (the serving front
        # door's worker pool), so the pair must be atomic or replies
        # interleave across callers.  Per-shard, so fan-outs to different
        # shards still overlap.
        self._rpc_locks: List[threading.Lock] = [
            threading.Lock() for _ in range(shards)
        ]
        # Name interning: one global names-tuple table, lazily announced to
        # each worker the first time a shape heads its way.
        self._intern: Dict[Tuple[str, ...], int] = {}
        self._names_by_id: Dict[int, Tuple[str, ...]] = {}
        self._registered: List[set] = [set() for _ in range(shards)]
        self._chunks: Dict[Tuple[str, ...], List[Tuple[Tuple[str, ...], slice]]] = {}
        self._degrade_seeds: Dict[int, int] = {}
        self.replica_sets: List[ParallelReplicaSet] = [
            ParallelReplicaSet(self, i, replication) for i in range(shards)
        ]
        # Counters behind the telemetry.runtime.* registry.
        self.pushed_batches = 0
        self.pushed_slots = 0
        self.backpressure_waits = 0
        self.dropped_batches = 0
        self.dropped_samples = 0
        self.worker_crashes = 0
        self.worker_restarts = 0
        self.replayed_slots = 0
        self.on_crash: Optional[Callable[[int], None]] = None
        self._counted_dead: set = set()
        self._stats_cache: List[Optional[dict]] = [None] * shards
        self._stats_key: List[Tuple[int, int]] = [(-1, -1)] * shards
        self._stat_offsets: List[Optional[dict]] = [None] * shards
        self._mutations = 0
        self._closed = False
        self._metrics: Optional[MetricsRegistry] = None
        for shard in range(shards):
            self._spawn(shard)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _checkpoint_dir(self, shard: int) -> Optional[str]:
        base = self.config.checkpoint_dir
        if base is None:
            return None
        return os.path.join(base, f"shard{shard}")

    def _spawn(self, shard: int, names_table: Optional[dict] = None) -> None:
        # Collect before forking so the child inherits as little garbage as
        # possible (the worker freezes the inherited heap at startup).
        gc.collect()
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(
                shard,
                self.rings[shard],
                child_conn,
                self.replication,
                self.store_config,
                self.config.durability,
                self._checkpoint_dir(shard),
                self.config.checkpoint_interval,
                names_table,
                self._fault_state(shard) if names_table is not None else None,
            ),
            name=f"repro-shard-worker-{shard}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._conns[shard] = parent_conn
        self._procs[shard] = proc
        self._counted_dead.discard(shard)

    def _fault_state(self, shard: int) -> dict:
        rs = self.replica_sets[shard]
        return {
            "down": list(rs._down),
            "drop_fraction": list(rs._drop_fraction),
            "degrade_seed": self._degrade_seeds.get(shard, 0),
        }

    def _register_degrade_seed(self, shard: int, seed: int) -> None:
        self._degrade_seeds.setdefault(shard, seed)

    def worker_alive(self, shard: int) -> bool:
        proc = self._procs[shard]
        return proc is not None and proc.is_alive()

    def restart_worker(self, shard: int) -> None:
        """Replace a dead worker; the ring window ``[acked, head)`` replays.

        The replacement gets the complete interning table and the fault
        mirror up front (slots already in the ring reference them), and —
        under checkpoint durability — reloads the last checkpoint before
        replaying, so no acknowledged batch is lost.
        """
        proc = self._procs[shard]
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
        ring = self.rings[shard]
        self.replayed_slots += ring.head - ring.acked
        self._accumulate_offsets(shard)
        self._stats_cache[shard] = None  # next read hits the new worker
        names_table = {
            i: self._names_by_id[i] for i in self._registered[shard]
        }
        self._spawn(shard, names_table=names_table)
        self.worker_restarts += 1
        self._bump()

    def check_workers(self, now: float = 0.0) -> List[int]:
        """Detect dead workers; restart them when ``auto_restart`` is set.

        Returns the shard ids found crashed on this sweep (the supervisor
        watchdog calls this every tick and traces what it returns).
        """
        if self._closed:
            return []
        crashed = []
        for shard in range(self.shards):
            if not self.worker_alive(shard):
                if shard in self._counted_dead:
                    continue  # already reported; not restarted by design
                self._counted_dead.add(shard)
                crashed.append(shard)
                self.worker_crashes += 1
                log.warning(
                    "shard %d worker died (exitcode %s)",
                    shard,
                    self._procs[shard].exitcode,
                )
                if self.on_crash is not None:
                    self.on_crash(shard)
                if self.config.auto_restart:
                    self.restart_worker(shard)
        if crashed:
            self._bump()
        return crashed

    def crash_worker(self, shard: int) -> None:
        """Chaos hook: make a worker die abruptly (no flush, no reply)."""
        if not self.worker_alive(shard):
            return
        conn = self._conns[shard]
        conn.send(("cmd", self.rings[shard].head, "crash", ()))
        self._procs[shard].join(timeout=5.0)
        self._bump()

    # ------------------------------------------------------------------
    # Ingest (producer side)
    # ------------------------------------------------------------------
    def _chunk_plan(
        self, names: Tuple[str, ...]
    ) -> List[Tuple[Tuple[str, ...], slice]]:
        plan = self._chunks.get(names)
        if plan is None:
            width = self.config.slot_width
            plan = [
                (names[i : i + width], slice(i, i + width))
                for i in range(0, len(names), width)
            ]
            self._chunks[names] = plan
        return plan

    def _intern_names(self, shard: int, names: Tuple[str, ...]) -> int:
        names_id = self._intern.get(names)
        if names_id is None:
            names_id = self._intern[names] = len(self._intern)
            self._names_by_id[names_id] = names
        if names_id not in self._registered[shard]:
            # Sent down the FIFO pipe *before* any slot referencing the id
            # can be pushed; the worker pulls pending registrations when it
            # meets an unknown id mid-drain, so ordering is airtight.
            self._registered[shard].add(names_id)
            try:
                self._call(shard, "reg", (names_id, names))
            except (ShardDownError, OSError):
                # Dead consumer must not fail a write (same contract as
                # ReplicaSet.ingest).  The parent-side table stays the
                # authority: a replacement worker receives every
                # registered id at spawn, so slots already in the ring
                # resolve after the restart.
                pass
        return names_id

    def push(self, shard: int, batch: SampleBatch) -> bool:
        """Queue one batch for a shard worker; returns False if dropped.

        Blocks up to ``push_timeout`` while the ring is full
        (backpressure), then drops and counts — writes never raise, the
        same contract as :meth:`ReplicaSet.ingest`.
        """
        ring = self.rings[shard]
        values = batch.values
        pushed_any = False
        for chunk_names, sl in self._chunk_plan(batch.names):
            names_id = self._intern_names(shard, chunk_names)
            chunk_values = values[sl]
            if not ring.try_push(names_id, batch.time, chunk_values):
                deadline = _time.monotonic() + self.config.push_timeout
                self.backpressure_waits += 1
                while not ring.try_push(names_id, batch.time, chunk_values):
                    if not self.worker_alive(shard):
                        # Dead consumer: give the supervisor a chance to
                        # restart it, but don't spin past the timeout.
                        self.check_workers()
                    if _time.monotonic() > deadline:
                        self.dropped_batches += 1
                        self.dropped_samples += len(chunk_names)
                        log.warning(
                            "shard %d ring full for %.1fs: dropping batch "
                            "(%d samples)",
                            shard,
                            self.config.push_timeout,
                            len(chunk_names),
                        )
                        break
                    _time.sleep(_POLL_S)
                else:
                    pushed_any = True
                    self.pushed_slots += 1
                continue
            pushed_any = True
            self.pushed_slots += 1
        if pushed_any:
            self.pushed_batches += 1
        return pushed_any

    # ------------------------------------------------------------------
    # Command RPC
    # ------------------------------------------------------------------
    def _call(self, shard: int, op: str, payload: tuple):
        if self._closed:
            raise StoreError("parallel runtime is closed")
        with self._rpc_locks[shard]:
            if not self.worker_alive(shard):
                # One repair attempt before declaring the shard unreadable.
                self.check_workers()
                if not self.worker_alive(shard):
                    raise ShardDownError(f"shard {shard}: worker process is dead")
            conn = self._conns[shard]
            if op == "reg":
                conn.send(("reg",) + payload)
                return None
            conn.send(("cmd", self.rings[shard].head, op, payload))
            deadline = _time.monotonic() + self.config.command_timeout
            while not conn.poll(0.01):
                if not self.worker_alive(shard):
                    raise ShardDownError(
                        f"shard {shard}: worker died executing {op!r}"
                    )
                if _time.monotonic() > deadline:
                    raise StoreError(
                        f"shard {shard}: worker timed out executing {op!r}"
                    )
            reply = conn.recv()
        if reply[0] == "ok":
            return reply[1]
        _, exc_type, message, _tb = reply
        exc_cls = getattr(_errors, exc_type, None)
        if exc_cls is None or not (
            isinstance(exc_cls, type) and issubclass(exc_cls, Exception)
        ):
            exc_cls = StoreError
        raise exc_cls(message)

    def _bump(self) -> None:
        self._mutations += 1

    # Fault counters live only in the worker's ReplicaSet memory (they are
    # never checkpointed), so a restart would reset them to zero and the
    # published metrics would run backwards.  On restart the last-known
    # values fold into these parent-side offsets instead.
    _OFFSET_LISTS = ("missed_writes", "dropped_writes", "repaired_samples")
    _OFFSET_SCALARS = (
        "lost_batches",
        "lost_samples",
        "resync_failures",
        "anti_entropy_sweeps",
        "diverged_windows",
        "repaired_windows",
        "recovered_samples",
    )

    def _merge_offsets(self, shard: int, stats: dict) -> dict:
        offsets = self._stat_offsets[shard]
        if offsets is None:
            return stats
        merged = dict(stats)
        for key in self._OFFSET_LISTS:
            merged[key] = [
                a + b for a, b in zip(stats[key], offsets[key])
            ]
        for key in self._OFFSET_SCALARS:
            merged[key] = stats[key] + offsets[key]
        return merged

    def _accumulate_offsets(self, shard: int) -> None:
        """Fold the last cached stats of a dead worker into the offsets.

        Best effort: counter deltas since the last snapshot die with the
        worker, exactly like un-checkpointed samples do.
        """
        last = self._stats_cache[shard]
        if last is None:
            return
        offsets = self._stat_offsets[shard]
        if offsets is None:
            offsets = self._stat_offsets[shard] = {
                **{k: [0] * len(last[k]) for k in self._OFFSET_LISTS},
                **{k: 0 for k in self._OFFSET_SCALARS},
            }
        for key in self._OFFSET_LISTS:
            offsets[key] = list(last[key])
        for key in self._OFFSET_SCALARS:
            offsets[key] = last[key]

    def shard_stats(self, shard: int) -> dict:
        """Worker-side replica-set counters, cached per (ring, mutation)
        state so a metrics snapshot costs at most one round trip."""
        key = (self.rings[shard].head, self._mutations)
        if self._stats_cache[shard] is None or self._stats_key[shard] != key:
            self._stats_cache[shard] = self._merge_offsets(
                shard, self._call(shard, "rs_stats", ())
            )
            self._stats_key[shard] = key
        return self._stats_cache[shard]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def backlog(self) -> int:
        return sum(r.backlog for r in self.rings)

    @property
    def unacked(self) -> int:
        return sum(r.unacked for r in self.rings)

    def drain(self) -> None:
        """Block until every pushed slot has been applied by its worker."""
        for shard in range(self.shards):
            self._call(shard, "ping", ())

    def checkpoint(self) -> List[int]:
        """Force a checkpoint on every worker; returns acked sequences."""
        return [
            int(self._call(shard, "checkpoint", ()))
            for shard in range(self.shards)
        ]

    def close(self, timeout: float = 10.0) -> None:
        """Graceful drain and shutdown: stop workers after they apply and
        flush (or checkpoint) everything pushed so far."""
        if self._closed:
            return
        for shard in range(self.shards):
            if not self.worker_alive(shard):
                continue
            try:
                self._call(shard, "stop", ())
            except (ShardDownError, StoreError, OSError):
                pass
        for shard in range(self.shards):
            proc = self._procs[shard]
            if proc is None:
                continue
            proc.join(timeout=timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            conn = self._conns[shard]
            if conn is not None:
                conn.close()
        self._closed = True

    def __del__(self):  # best-effort cleanup; daemon workers die anyway
        try:
            if not self._closed:
                for proc in self._procs:
                    if proc is not None and proc.is_alive():
                        proc.terminate()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> MetricsRegistry:
        """Typed instruments on the ``telemetry.runtime.*`` subtree."""
        if self._metrics is None:
            r = MetricsRegistry()
            r.gauge("telemetry.runtime.workers", "live shard workers",
                    fn=lambda: float(
                        sum(self.worker_alive(s) for s in range(self.shards))
                        if not self._closed else 0.0
                    ))
            r.counter("telemetry.runtime.pushed_batches",
                      "batches queued to workers",
                      fn=lambda: float(self.pushed_batches))
            r.counter("telemetry.runtime.pushed_slots",
                      "ring slots written (batches after chunking)",
                      fn=lambda: float(self.pushed_slots))
            r.counter("telemetry.runtime.backpressure_waits",
                      "pushes that blocked on a full ring",
                      fn=lambda: float(self.backpressure_waits))
            r.counter("telemetry.runtime.dropped_batches",
                      "batches dropped after backpressure timeout",
                      fn=lambda: float(self.dropped_batches))
            r.counter("telemetry.runtime.dropped_samples",
                      "samples dropped after backpressure timeout",
                      fn=lambda: float(self.dropped_samples))
            r.gauge("telemetry.runtime.backlog",
                    "slots pushed but not yet applied",
                    fn=lambda: float(self.backlog if not self._closed else 0))
            r.gauge("telemetry.runtime.unacked",
                    "slots not yet acknowledged (ring occupancy)",
                    fn=lambda: float(self.unacked if not self._closed else 0))
            r.counter("telemetry.runtime.worker_crashes",
                      "worker processes found dead",
                      fn=lambda: float(self.worker_crashes))
            r.counter("telemetry.runtime.worker_restarts",
                      "worker processes restarted",
                      fn=lambda: float(self.worker_restarts))
            r.counter("telemetry.runtime.replayed_slots",
                      "ring slots replayed after worker restarts",
                      fn=lambda: float(self.replayed_slots))
            self._metrics = r
        return self._metrics

    def health_metrics(self) -> Dict[str, float]:
        return self.metrics.snapshot()
