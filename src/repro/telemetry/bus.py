"""In-process publish/subscribe message bus.

Plays the role of the transport layer in production monitoring stacks
(MQTT in DCDB, the aggregator overlay in LDMS): samplers publish
:class:`~repro.telemetry.sample.SampleBatch` objects to topics, and sinks
(the time-series store, alert engines, streaming analytics) subscribe with
topic patterns.

Topics are hierarchical dot-paths like metric names; subscriptions match by
shell-style patterns so a store can subscribe to ``"#"`` (everything) while a
node-level runtime subscribes only to ``cluster.rack0.node3.*``.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.telemetry.sample import SampleBatch

__all__ = ["Subscription", "MessageBus"]

SinkFn = Callable[[str, SampleBatch], None]

#: Wildcard pattern matching every topic.
MATCH_ALL = "#"


@dataclass
class Subscription:
    """A registered sink: pattern + callback + delivery statistics."""

    pattern: str
    callback: SinkFn
    delivered: int = 0
    active: bool = True

    def matches(self, topic: str) -> bool:
        if not self.active:
            return False
        if self.pattern == MATCH_ALL:
            return True
        return fnmatch.fnmatchcase(topic, self.pattern)

    def cancel(self) -> None:
        """Stop delivering to this subscription."""
        self.active = False


class MessageBus:
    """Synchronous topic-based pub/sub bus with delivery accounting.

    Delivery is synchronous and in subscription order, which keeps the whole
    pipeline deterministic under the discrete-event simulator.  The bus keeps
    simple counters (published / delivered / dropped) that the telemetry
    benchmarks report.
    """

    def __init__(self) -> None:
        self._subscriptions: List[Subscription] = []
        self.published = 0
        self.delivered = 0
        self.dropped = 0
        self._topic_counts: Dict[str, int] = {}

    def subscribe(self, pattern: str, callback: SinkFn) -> Subscription:
        """Register ``callback`` for topics matching ``pattern``.

        ``pattern`` uses shell-style wildcards (``*``, ``?``) or the special
        ``"#"`` which matches every topic.
        """
        sub = Subscription(pattern=pattern, callback=callback)
        self._subscriptions.append(sub)
        return sub

    def publish(self, topic: str, batch: SampleBatch) -> int:
        """Deliver ``batch`` to all matching subscriptions.

        Returns the number of deliveries; a published batch no subscriber
        wanted counts as dropped.
        """
        self.published += 1
        self._topic_counts[topic] = self._topic_counts.get(topic, 0) + 1
        count = 0
        for sub in self._subscriptions:
            if sub.matches(topic):
                sub.callback(topic, batch)
                sub.delivered += 1
                count += 1
        if count == 0:
            self.dropped += 1
        self.delivered += count
        return count

    def topics(self) -> List[str]:
        """Topics seen so far, sorted."""
        return sorted(self._topic_counts)

    def topic_count(self, topic: str) -> int:
        """Number of batches published on ``topic``."""
        return self._topic_counts.get(topic, 0)

    @property
    def subscription_count(self) -> int:
        return sum(1 for s in self._subscriptions if s.active)
