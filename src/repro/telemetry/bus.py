"""In-process publish/subscribe message bus.

Plays the role of the transport layer in production monitoring stacks
(MQTT in DCDB, the aggregator overlay in LDMS): samplers publish
:class:`~repro.telemetry.sample.SampleBatch` objects to topics, and sinks
(the time-series store, alert engines, streaming analytics) subscribe with
topic patterns.

Topics are hierarchical dot-paths like metric names; subscriptions match by
shell-style patterns so a store can subscribe to ``"#"`` (everything) while a
node-level runtime subscribes only to ``cluster.rack0.node3.*``.

Routing is indexed: each subscription pattern is compiled to a regex once,
and the bus caches the exact-topic → matching-subscriptions list so a
publish on a hot topic does no pattern matching at all.  The cache is
invalidated on subscribe and compaction; quarantine and cancellation are
checked per delivery, so the resilience semantics below are unaffected.

Fault tolerance mirrors what long-lived monitoring deployments need: a
raising sink is isolated (other subscribers still get the batch), repeated
failures quarantine the subscription instead of poisoning every publish, and
failed deliveries are parked in a bounded dead-letter queue that operators
can inspect and replay once the sink is fixed.
"""

from __future__ import annotations

import fnmatch
import re
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.errors import SubscriberError
from repro.obs import OBS as _OBS
from repro.obs.metrics import MetricsRegistry
from repro.telemetry.sample import SampleBatch

__all__ = ["Subscription", "DeadLetter", "MessageBus"]

SinkFn = Callable[[str, SampleBatch], None]

#: Wildcard pattern matching every topic.
MATCH_ALL = "#"


@dataclass
class Subscription:
    """A registered sink: pattern + callback + delivery statistics.

    ``errors`` counts every failed delivery; ``consecutive_errors`` resets on
    each success and drives quarantine.  A quarantined subscription stays
    registered (inspectable, revivable via :meth:`reset`) but receives no
    deliveries until revived.
    """

    pattern: str
    callback: SinkFn
    delivered: int = 0
    active: bool = True
    errors: int = 0
    consecutive_errors: int = 0
    quarantined: bool = False
    last_error: str = ""
    _matcher: Optional[Callable] = field(
        default=None, init=False, repr=False, compare=False
    )
    _bus: Optional["MessageBus"] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        # Compile the shell pattern once; "#" (and "*") match everything
        # without a regex call at all.
        if self.pattern in (MATCH_ALL, "*"):
            self._matcher = None
        else:
            self._matcher = re.compile(fnmatch.translate(self.pattern)).match

    def matches_topic(self, topic: str) -> bool:
        """Pure pattern match, ignoring active/quarantine state."""
        return self._matcher is None or self._matcher(topic) is not None

    def matches(self, topic: str) -> bool:
        if not self.active or self.quarantined:
            return False
        return self.matches_topic(topic)

    def cancel(self) -> None:
        """Stop delivering to this subscription.

        The bus compacts cancelled subscriptions out of its delivery list
        opportunistically on the next publish.
        """
        self.active = False
        if self._bus is not None:
            self._bus._pending_compact = True

    def reset(self) -> None:
        """Revive a quarantined subscription (e.g. after fixing the sink)."""
        self.quarantined = False
        self.consecutive_errors = 0


@dataclass
class DeadLetter:
    """One failed delivery parked for inspection/replay."""

    topic: str
    batch: SampleBatch
    subscription: Subscription
    error: str
    time: float = field(default=0.0)


class MessageBus:
    """Synchronous topic-based pub/sub bus with delivery accounting.

    Delivery is synchronous and in subscription order, which keeps the whole
    pipeline deterministic under the discrete-event simulator.  The bus keeps
    simple counters (published / delivered / dropped / delivery_errors) that
    the telemetry benchmarks and the health monitor report.

    Parameters
    ----------
    max_consecutive_errors:
        A subscription that fails this many deliveries in a row is
        quarantined: skipped on subsequent publishes until
        :meth:`Subscription.reset` revives it.
    dead_letter_capacity:
        Bound on the dead-letter queue; oldest letters are evicted first and
        counted in ``dead_letters_evicted``.
    topic_cardinality_cap:
        Bound on the per-topic publish counters.  The first
        ``topic_cardinality_cap`` distinct topics are tracked individually;
        publishes on any further topic are folded into a single overflow
        bucket (``topic_overflow``) so a high-cardinality workload cannot
        grow bus memory without bound.
    route_cache_capacity:
        Bound on the exact-topic routing cache; when full, the cache is
        dropped and rebuilt on demand.
    """

    def __init__(
        self,
        max_consecutive_errors: int = 5,
        dead_letter_capacity: int = 256,
        topic_cardinality_cap: int = 1024,
        route_cache_capacity: int = 1024,
    ) -> None:
        self._subscriptions: List[Subscription] = []
        self.published = 0
        self.delivered = 0
        self.dropped = 0
        self.delivery_errors = 0
        self.quarantines = 0
        self.dead_letters_evicted = 0
        self.max_consecutive_errors = max_consecutive_errors
        self._dead_letters: Deque[DeadLetter] = deque(maxlen=dead_letter_capacity)
        self.topic_cardinality_cap = topic_cardinality_cap
        self._topic_counts: Dict[str, int] = {}
        self.topic_overflow = 0  # publishes folded into the overflow bucket
        self.route_cache_capacity = route_cache_capacity
        self._route_cache: Dict[str, List[Subscription]] = {}
        self.route_cache_hits = 0
        self.route_cache_misses = 0
        self._pending_compact = False
        self._metrics: Optional[MetricsRegistry] = None

    def subscribe(self, pattern: str, callback: SinkFn) -> Subscription:
        """Register ``callback`` for topics matching ``pattern``.

        ``pattern`` uses shell-style wildcards (``*``, ``?``) or the special
        ``"#"`` which matches every topic.
        """
        sub = Subscription(pattern=pattern, callback=callback)
        sub._bus = self
        self._subscriptions.append(sub)
        self._route_cache.clear()
        return sub

    def _count_topic(self, topic: str) -> None:
        counts = self._topic_counts
        seen = counts.get(topic)
        if seen is not None:
            counts[topic] = seen + 1
        elif len(counts) < self.topic_cardinality_cap:
            counts[topic] = 1
        else:
            self.topic_overflow += 1

    def _route(self, topic: str) -> List[Subscription]:
        """Matching subscriptions for ``topic``, cached per exact topic."""
        subs = self._route_cache.get(topic)
        if subs is None:
            self.route_cache_misses += 1
            if len(self._route_cache) >= self.route_cache_capacity:
                self._route_cache.clear()
            subs = [s for s in self._subscriptions if s.matches_topic(topic)]
            self._route_cache[topic] = subs
        else:
            self.route_cache_hits += 1
        return subs

    def publish(self, topic: str, batch: SampleBatch) -> int:
        """Deliver ``batch`` to all matching subscriptions.

        Returns the number of successful deliveries; a published batch no
        subscriber wanted counts as dropped.  A raising subscriber does not
        abort delivery to the rest: the failure is counted, the batch is
        parked in the dead-letter queue, and delivery continues.
        """
        if _OBS.enabled:
            with _OBS.tracer.span("bus.publish", sim_time=batch.time, topic=topic):
                return self._publish(topic, batch)
        return self._publish(topic, batch)

    def _publish(self, topic: str, batch: SampleBatch) -> int:
        self.published += 1
        self._count_topic(topic)
        if self._pending_compact:
            self.compact()
        obs_on = _OBS.enabled
        count = 0
        for sub in self._route(topic):
            if not sub.active or sub.quarantined:
                continue
            try:
                if obs_on:
                    with _OBS.tracer.span(
                        "bus.deliver", sim_time=batch.time, pattern=sub.pattern
                    ):
                        sub.callback(topic, batch)
                else:
                    sub.callback(topic, batch)
            except Exception as exc:  # noqa: BLE001 — isolate any sink failure
                self._record_failure(sub, topic, batch, exc)
                continue
            sub.delivered += 1
            sub.consecutive_errors = 0
            count += 1
        if count == 0:
            self.dropped += 1
        self.delivered += count
        return count

    def _record_failure(
        self, sub: Subscription, topic: str, batch: SampleBatch, exc: Exception
    ) -> None:
        sub.errors += 1
        sub.consecutive_errors += 1
        sub.last_error = repr(exc)
        self.delivery_errors += 1
        if (
            self._dead_letters.maxlen is not None
            and len(self._dead_letters) >= self._dead_letters.maxlen
        ):
            self.dead_letters_evicted += 1
        self._dead_letters.append(
            DeadLetter(topic, batch, sub, repr(exc), time=batch.time)
        )
        if (
            not sub.quarantined
            and sub.consecutive_errors >= self.max_consecutive_errors
        ):
            sub.quarantined = True
            self.quarantines += 1

    # ------------------------------------------------------------------
    # Dead-letter queue
    # ------------------------------------------------------------------
    @property
    def dead_letters(self) -> List[DeadLetter]:
        """Snapshot of currently parked failed deliveries (oldest first)."""
        return list(self._dead_letters)

    @property
    def dead_letter_count(self) -> int:
        return len(self._dead_letters)

    def replay_dead_letters(
        self, subscription: Optional[Subscription] = None, strict: bool = False
    ) -> int:
        """Re-attempt parked deliveries; returns the number redelivered.

        Letters whose delivery succeeds are removed; letters that fail again
        are re-parked with the fresh error.  Letters for cancelled
        subscriptions are discarded.  Pass ``subscription`` to replay only one
        sink's letters; with ``strict=True`` the first re-failure raises
        :class:`~repro.errors.SubscriberError` instead of re-parking.

        Replay intentionally ignores quarantine: the operator flow is to fix
        the sink, :meth:`Subscription.reset` it, then replay.
        """
        letters = list(self._dead_letters)
        self._dead_letters.clear()
        replayed = 0
        for letter in letters:
            sub = letter.subscription
            if subscription is not None and sub is not subscription:
                self._dead_letters.append(letter)
                continue
            if not sub.active:
                continue
            try:
                sub.callback(letter.topic, letter.batch)
            except Exception as exc:  # noqa: BLE001
                letter.error = repr(exc)
                self._dead_letters.append(letter)
                if strict:
                    raise SubscriberError(
                        f"replay to {sub.pattern!r} failed again: {exc!r}"
                    ) from exc
                continue
            sub.delivered += 1
            self.delivered += 1
            replayed += 1
        return replayed

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Drop cancelled subscriptions from the delivery list.

        Called opportunistically by :meth:`publish`; returns count removed.
        Invalidates the routing cache, which still references the dropped
        subscriptions.
        """
        before = len(self._subscriptions)
        self._subscriptions = [s for s in self._subscriptions if s.active]
        removed = before - len(self._subscriptions)
        if removed:
            self._route_cache.clear()
        self._pending_compact = False
        return removed

    def quarantined(self) -> List[Subscription]:
        """Subscriptions currently quarantined for repeated failures."""
        return [s for s in self._subscriptions if s.active and s.quarantined]

    def topics(self) -> List[str]:
        """Individually tracked topics seen so far, sorted.

        Topics folded into the overflow bucket (beyond
        ``topic_cardinality_cap``) are not listed.
        """
        return sorted(self._topic_counts)

    def topic_count(self, topic: str) -> int:
        """Number of batches published on ``topic`` (0 if untracked)."""
        return self._topic_counts.get(topic, 0)

    @property
    def subscription_count(self) -> int:
        return sum(1 for s in self._subscriptions if s.active)

    @property
    def quarantined_count(self) -> int:
        return sum(1 for s in self._subscriptions if s.active and s.quarantined)

    @property
    def metrics(self) -> MetricsRegistry:
        """Typed instruments over the bus counters (lazily built).

        The hot-path counting stays plain attribute increments; the
        registry's callback-backed instruments read them at snapshot or
        Prometheus-export time, so migration costs the publish path
        nothing.
        """
        if self._metrics is None:
            r = MetricsRegistry()
            r.counter("telemetry.bus.published",
                      "batches published", fn=lambda: float(self.published))
            r.counter("telemetry.bus.delivered",
                      "successful deliveries", fn=lambda: float(self.delivered))
            r.counter("telemetry.bus.dropped",
                      "batches no subscriber accepted",
                      fn=lambda: float(self.dropped))
            r.counter("telemetry.bus.delivery_errors",
                      "failed deliveries", fn=lambda: float(self.delivery_errors))
            r.gauge("telemetry.bus.dead_letters",
                    "parked failed deliveries",
                    fn=lambda: float(len(self._dead_letters)))
            r.counter("telemetry.bus.dead_letters_evicted",
                      "dead letters evicted by the capacity bound",
                      fn=lambda: float(self.dead_letters_evicted))
            r.gauge("telemetry.bus.subscriptions",
                    "active subscriptions",
                    fn=lambda: float(self.subscription_count))
            r.gauge("telemetry.bus.quarantined",
                    "quarantined subscriptions",
                    fn=lambda: float(self.quarantined_count))
            r.gauge("telemetry.bus.topics_tracked",
                    "individually tracked topics",
                    fn=lambda: float(len(self._topic_counts)))
            r.gauge("telemetry.bus.topic_cardinality_cap",
                    "bound on tracked topics",
                    fn=lambda: float(self.topic_cardinality_cap))
            r.counter("telemetry.bus.topic_overflow",
                      "publishes folded into the overflow bucket",
                      fn=lambda: float(self.topic_overflow))
            r.gauge("telemetry.bus.route_cache_size",
                    "cached exact-topic routes",
                    fn=lambda: float(len(self._route_cache)))
            r.counter("telemetry.bus.route_cache_hits",
                      "route cache hits", fn=lambda: float(self.route_cache_hits))
            r.counter("telemetry.bus.route_cache_misses",
                      "route cache misses",
                      fn=lambda: float(self.route_cache_misses))
            self._metrics = r
        return self._metrics

    def health_metrics(self) -> Dict[str, float]:
        """Self-metrics snapshot — a thin dict view over :attr:`metrics`."""
        return self.metrics.snapshot()
