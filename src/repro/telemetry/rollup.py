"""Materialized downsample cascades (rollups) with a tier-serving planner.

DCDB Wintermute (PAPERS.md) keeps online ODA queries fast over months of
telemetry by maintaining pre-aggregated views next to the raw store.  This
module is that design for our stack: every series gets a cascade of
downsample tiers (e.g. 10s → 1m → 1h) of ``sum/min/max/count`` (``mean``
is derived as ``sum/count``), maintained **incrementally** at ingest/flush
time, and a query planner that transparently serves ``resample``/``align``
buckets from the coarsest sufficient tier, falling back to raw.

Bit-identity contract
---------------------
A bucket served from a tier is **bit-identical** to reducing the raw
samples with the vectorized kernels.  That holds by construction, not by
luck:

* Maintenance assigns each sample to the bucket the query path's
  ``searchsorted``-against-float-edges would pick (a ``floor`` candidate
  corrected against the actual edge floats), then reduces each bucket with
  the same sequential ``reduceat`` kernels over the same sample slices.
* A tier bucket ``[b·s, (b+1)·s)`` is *finalized* only once the series'
  last timestamp has reached the bucket's end edge — append-only ingest
  with last-writer-wins on the tail means finalized buckets can never
  change again.
* The planner only serves a query bucket when every edge involved is an
  exact float multiple of the tier step (``fmod`` checks) — then the edge
  floats used at maintenance equal the query's edge floats, so boundary
  decisions agree.  Integer-second telemetry always passes; pathological
  float grids fall back to raw.
* Float addition is not associative, so ``sum``/``mean`` are served only
  from the tier whose step equals the query step exactly.  ``min``/``max``
  (associative, NaN-propagating, ties resolved identically under ordered
  grouping) and ``count`` (small-integer arithmetic, exact) may combine
  ``k`` finer buckets into one query bucket.
* The final query bucket is always served from raw: its upper bound is
  closed (a sample exactly at ``until`` belongs to it) while tier buckets
  are half-open.
* Missing tier buckets are **gaps**: they resample to NaN, exactly like an
  empty raw bucket — never 0, for ``count`` and ``sum`` included.

Rollup tiers are never trimmed: they are the long-horizon memory that
outlives raw retention (the paper's month-scale use case).  Once raw
samples age out of an archive-less retention window, a tier keeps serving
the history raw can no longer answer.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StoreError

__all__ = ["RollupConfig", "RollupEngine", "SERVABLE_AGGREGATIONS"]

#: Aggregations the planner can serve from a tier (must have vectorized
#: kernels in :data:`repro.telemetry.store.VECTORIZED_AGGREGATIONS`).
SERVABLE_AGGREGATIONS = ("mean", "min", "max", "sum", "count")

#: Aggregations whose per-bucket values may be combined across k adjacent
#: tier buckets (associative under ordered grouping / exact integers).
_COMBINABLE = ("min", "max", "count")

_INITIAL_CAPACITY = 32

#: (times, values) provider over ``[since, until]`` (closed), cold-aware.
FetchFn = Callable[[str, float, float], Tuple[np.ndarray, np.ndarray]]


class RollupConfig:
    """Downsample cascade tuning (picklable; ships to worker processes).

    Parameters
    ----------
    steps:
        Tier bucket widths in seconds, strictly increasing.  The classic
        cascade is ``(10.0, 60.0, 3600.0)``.
    """

    def __init__(self, steps: Sequence[float] = (10.0, 60.0, 3600.0)):
        steps = tuple(float(s) for s in steps)
        if not steps:
            raise StoreError("rollup config needs at least one tier step")
        for s in steps:
            if not (s > 0.0 and math.isfinite(s)):
                raise StoreError(f"rollup steps must be positive, got {s}")
        if any(b <= a for a, b in zip(steps, steps[1:])):
            raise StoreError(
                f"rollup steps must be strictly increasing, got {steps}"
            )
        self.steps = steps

    def to_dict(self) -> dict:
        return {"steps": list(self.steps)}

    @classmethod
    def from_dict(cls, d: dict) -> "RollupConfig":
        return cls(steps=tuple(d.get("steps", (10.0, 60.0, 3600.0))))


def _bucket_of(t: float, step: float) -> int:
    """Index of the tier bucket holding ``t``, consistent with the float
    edge values ``fl(b * step)`` the query path compares against."""
    b = int(math.floor(t / step))
    while (b + 1) * step <= t:
        b += 1
    while b * step > t:
        b -= 1
    return b


def _buckets_of(times: np.ndarray, step: float) -> np.ndarray:
    """Vectorized :func:`_bucket_of`: edge-consistent bucket per sample."""
    b = np.floor(times / step).astype(np.int64)
    # Correct float-division rounding against the actual edge floats, the
    # same comparisons searchsorted-over-edges performs.
    b += ((b + 1).astype(np.float64) * step <= times).astype(np.int64)
    b -= (b.astype(np.float64) * step > times).astype(np.int64)
    return b


class _TierSeries:
    """One (series, tier) pair: sparse finalized buckets + a cursor.

    Buckets are stored as parallel geometric-growth arrays keyed by int64
    bucket index (strictly increasing; only non-empty buckets exist).
    ``cursor`` is the exclusive end of the finalized index range: every
    bucket below it is immutable, everything at or above it must be
    answered from raw.
    """

    __slots__ = ("step", "cursor", "_idx", "_sum", "_min", "_max", "_cnt",
                 "_size")

    def __init__(self, step: float):
        self.step = step
        self.cursor: Optional[int] = None
        self._idx = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._sum = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._min = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._max = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._cnt = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def idx(self) -> np.ndarray:
        return self._idx[: self._size]

    def column(self, field: str) -> np.ndarray:
        return getattr(self, "_" + field)[: self._size]

    def _grow(self, needed: int) -> None:
        capacity = self._idx.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity * 2)
        for attr in ("_idx", "_sum", "_min", "_max", "_cnt"):
            old = getattr(self, attr)
            new = np.empty(new_capacity, dtype=old.dtype)
            new[: self._size] = old[: self._size]
            setattr(self, attr, new)

    def extend(self, idx, sums, mins, maxs, cnts) -> None:
        n = idx.size
        if n == 0:
            return
        if self._size and idx[0] <= self._idx[self._size - 1]:
            raise StoreError(
                f"rollup tier {self.step}: non-monotonic bucket extend"
            )
        end = self._size + n
        self._grow(end)
        self._idx[self._size : end] = idx
        self._sum[self._size : end] = sums
        self._min[self._size : end] = mins
        self._max[self._size : end] = maxs
        self._cnt[self._size : end] = cnts
        self._size = end

    # -- persistence glue ----------------------------------------------
    def arrays(self) -> Dict[str, np.ndarray]:
        return {
            "idx": self.idx.copy(),
            "sum": self.column("sum").copy(),
            "min": self.column("min").copy(),
            "max": self.column("max").copy(),
            "cnt": self.column("cnt").copy(),
        }

    def restore(self, cursor: int, arrays: Dict[str, np.ndarray]) -> None:
        if self._size:
            raise StoreError("cannot restore into a non-empty rollup tier")
        self.cursor = int(cursor)
        self.extend(
            np.asarray(arrays["idx"], dtype=np.int64),
            np.asarray(arrays["sum"], dtype=np.float64),
            np.asarray(arrays["min"], dtype=np.float64),
            np.asarray(arrays["max"], dtype=np.float64),
            np.asarray(arrays["cnt"], dtype=np.int64),
        )


class RollupEngine:
    """Incremental rollup maintenance plus the tier-serving query planner."""

    def __init__(
        self,
        config: Optional[RollupConfig],
        fetch: FetchFn,
        query_fetch: Optional[FetchFn] = None,
    ):
        """``fetch`` feeds maintenance and must return the series' data
        *without* enforcing retention (finalization reads samples about to
        be trimmed — that pre-trim read is what makes rollups long-horizon
        memory).  ``query_fetch`` (default: ``fetch``) feeds the planner's
        raw tail and must have exactly the query path's semantics,
        retention enforcement included, so spliced tails are bit-identical
        to a pure-raw query."""
        self.config = config or RollupConfig()
        self._fetch = fetch
        self._query_fetch = query_fetch if query_fetch is not None else fetch
        self._series: Dict[str, List[_TierSeries]] = {}
        self.buckets_finalized = 0
        self.buckets_repaired = 0
        self.buckets_served = 0
        self.tier_hits = 0
        self.partial_hits = 0
        self.raw_fallbacks = 0

    # ------------------------------------------------------------------
    # Maintenance (mutation epilogue)
    # ------------------------------------------------------------------
    def observe(self, name: str, t_first: float, t_last: float) -> None:
        """Finalize every tier bucket completed by data up to ``t_last``.

        ``t_first`` (the series' overall first timestamp, cold included)
        seeds the cursor on first contact so the empty eternity before a
        series began is never materialized.  A bucket is complete exactly
        when its end edge is ``<= t_last``: appends must land at or after
        ``t_last``, and a last-writer-wins overwrite *at* ``t_last`` only
        touches the (never finalized) bucket holding ``t_last`` itself.
        """
        if not (math.isfinite(t_first) and math.isfinite(t_last)):
            return
        tiers = self._series.get(name)
        if tiers is None:
            tiers = self._series[name] = [
                _TierSeries(s) for s in self.config.steps
            ]
        for ts in tiers:
            if ts.cursor is None:
                ts.cursor = _bucket_of(t_first, ts.step)
            new_cursor = _bucket_of(t_last, ts.step)
            if new_cursor > ts.cursor:
                self._finalize(name, ts, new_cursor)

    def _finalize(self, name: str, ts: _TierSeries, new_cursor: int) -> None:
        s = ts.step
        lo_edge = ts.cursor * s
        hi_edge = new_cursor * s
        times, values = self._fetch(name, lo_edge, hi_edge)
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        # The fetch interval is closed; the bucket ending at hi_edge is
        # half-open, so a sample exactly at hi_edge stays un-finalized.
        cut = int(np.searchsorted(times, hi_edge, side="left"))
        times, values = times[:cut], values[:cut]
        ts.cursor = new_cursor
        if not times.size:
            return
        buckets = _buckets_of(times, s)
        starts = np.flatnonzero(np.r_[True, buckets[1:] != buckets[:-1]])
        ends = np.r_[starts[1:], times.size]
        idx = buckets[starts]
        # Same sequential-reduceat kernels over the same per-bucket sample
        # slices the query path reduces — per-bucket bit identity.
        ts.extend(
            idx,
            np.add.reduceat(values, starts),
            np.minimum.reduceat(values, starts),
            np.maximum.reduceat(values, starts),
            (ends - starts).astype(np.int64),
        )
        self.buckets_finalized += int(idx.size)

    def repair(self, name: str, since: float, until: float) -> int:
        """Recompute finalized buckets overlapping ``[since, until)``.

        Anti-entropy repair splices raw samples *below* the tier cursors —
        territory :meth:`observe` treats as immutable — so the affected
        bucket rows must be rebuilt from the repaired raw data or tier-served
        queries would keep answering from the pre-repair aggregates.
        Returns the number of bucket rows rewritten (including rows added
        or removed by the repair).
        """
        tiers = self._series.get(name)
        if tiers is None:
            return 0
        patched = 0
        for ts in tiers:
            if ts.cursor is None:
                continue
            s = ts.step
            lo = _bucket_of(since, s)
            hi = _bucket_of(until, s)
            if until == hi * s:
                hi -= 1
            hi = min(hi, ts.cursor - 1)
            if hi < lo:
                continue
            lo_edge, hi_edge = lo * s, (hi + 1) * s
            times, values = self._fetch(name, lo_edge, hi_edge)
            times = np.asarray(times, dtype=np.float64)
            values = np.asarray(values, dtype=np.float64)
            keep = slice(
                int(np.searchsorted(times, lo_edge, side="left")),
                int(np.searchsorted(times, hi_edge, side="left")),
            )
            times, values = times[keep], values[keep]
            if times.size:
                buckets = _buckets_of(times, s)
                starts = np.flatnonzero(np.r_[True, buckets[1:] != buckets[:-1]])
                ends = np.r_[starts[1:], times.size]
                new_idx = buckets[starts]
                new_sum = np.add.reduceat(values, starts)
                new_min = np.minimum.reduceat(values, starts)
                new_max = np.maximum.reduceat(values, starts)
                new_cnt = (ends - starts).astype(np.int64)
            else:
                new_idx = np.empty(0, dtype=np.int64)
                new_sum = new_min = new_max = np.empty(0, dtype=np.float64)
                new_cnt = np.empty(0, dtype=np.int64)
            pos_lo = int(np.searchsorted(ts.idx, lo, side="left"))
            pos_hi = int(np.searchsorted(ts.idx, hi, side="right"))
            for attr, new_col in (
                ("_idx", new_idx), ("_sum", new_sum), ("_min", new_min),
                ("_max", new_max), ("_cnt", new_cnt),
            ):
                old = getattr(ts, attr)
                setattr(ts, attr, np.concatenate(
                    (old[:pos_lo], new_col.astype(old.dtype), old[pos_hi:ts._size])
                ))
            ts._size = ts._idx.size
            patched += max(pos_hi - pos_lo, int(new_idx.size))
        self.buckets_repaired += patched
        return patched

    # ------------------------------------------------------------------
    # Planner (query path)
    # ------------------------------------------------------------------
    def serve(
        self,
        name: str,
        since: float,
        until: float,
        step: float,
        agg: str,
        engine: str,
        edges: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Serve the buckets of ``edges`` from the coarsest sufficient
        tier, splicing a raw-computed tail for unfinalized/final buckets.

        Returns the full per-bucket value array, or ``None`` when no tier
        is eligible (caller runs the raw path unchanged).  The scalar
        engine is never served: its reference reductions (``np.sum`` et
        al.) are not bitwise-committed to ``reduceat`` segmentation.
        """
        if engine == "scalar" or agg not in SERVABLE_AGGREGATIONS:
            return None
        tiers = self._series.get(name)
        n = int(edges.size) - 1
        if tiers is None or n < 2:
            return None
        for ts in reversed(tiers):  # coarsest tier first
            if ts.cursor is None:
                continue
            s = ts.step
            if math.fmod(step, s) != 0.0:
                continue
            k = int(round(step / s))
            if k < 1 or (k != 1 and agg not in _COMBINABLE):
                continue
            if math.fmod(since, s) != 0.0:
                continue
            if np.any(np.fmod(edges, s) != 0.0):
                continue
            # Exact integer tier index of every edge (edges are exact
            # multiples of s, so the division is exact).
            m = np.rint(edges / s).astype(np.int64)
            # Servable prefix: every underlying tier bucket finalized, and
            # never the final query bucket (closed upper bound → raw).
            served = int(np.searchsorted(m[1:], ts.cursor, side="right"))
            served = min(served, n - 1)
            if served <= 0:
                continue
            out = np.full(n, np.nan)
            self._fill(ts, agg, m, k, served, out)
            # Raw tail: identical fetch + kernel segmentation to what the
            # pure-raw path would run over these trailing edges.
            from repro.telemetry.store import resample_onto

            t_sub, v_sub = self._query_fetch(
                name, float(edges[served]), until
            )
            out[served:] = resample_onto(
                np.asarray(t_sub, dtype=np.float64),
                np.asarray(v_sub, dtype=np.float64),
                edges[served:], agg, engine,
            )
            if served == n - 1:
                self.tier_hits += 1
            else:
                self.partial_hits += 1
            self.buckets_served += served
            return out
        self.raw_fallbacks += 1
        return None

    def _fill(
        self,
        ts: _TierSeries,
        agg: str,
        m: np.ndarray,
        k: int,
        served: int,
        out: np.ndarray,
    ) -> None:
        idx = ts.idx
        lo = int(np.searchsorted(idx, m[0]))
        hi = int(np.searchsorted(idx, m[served]))
        if hi <= lo:
            return  # no stored buckets in range: all gaps stay NaN
        window = idx[lo:hi]
        if k == 1:
            pos = (window - m[0]).astype(np.intp)
            if agg == "mean":
                out[pos] = ts.column("sum")[lo:hi] / ts.column("cnt")[lo:hi]
            elif agg == "sum":
                out[pos] = ts.column("sum")[lo:hi]
            elif agg == "min":
                out[pos] = ts.column("min")[lo:hi]
            elif agg == "max":
                out[pos] = ts.column("max")[lo:hi]
            else:
                out[pos] = ts.column("cnt")[lo:hi].astype(np.float64)
            return
        # k finer buckets per query bucket: ordered grouping preserves the
        # sequential reduction (associative aggs only — planner-gated).
        q = (window - m[0]) // k
        starts = np.flatnonzero(np.r_[True, q[1:] != q[:-1]])
        pos = q[starts].astype(np.intp)
        if agg == "count":
            out[pos] = np.add.reduceat(
                ts.column("cnt")[lo:hi], starts
            ).astype(np.float64)
        elif agg == "min":
            out[pos] = np.minimum.reduceat(ts.column("min")[lo:hi], starts)
        else:
            out[pos] = np.maximum.reduceat(ts.column("max")[lo:hi], starts)

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    @property
    def series_tracked(self) -> int:
        return len(self._series)

    def names(self) -> List[str]:
        return sorted(self._series)

    def cursor_time(self, name: str, step: float) -> Optional[float]:
        """Finalized-through timestamp of one tier (None if untracked)."""
        for ts in self._series.get(name, ()):
            if ts.step == step and ts.cursor is not None:
                return ts.cursor * ts.step
        return None

    def tier_state(self, name: str) -> List[Tuple[float, int, Dict[str, np.ndarray]]]:
        """Snapshot [(step, cursor, arrays), ...] for persistence."""
        out = []
        for ts in self._series.get(name, ()):
            if ts.cursor is None:
                continue
            out.append((ts.step, ts.cursor, ts.arrays()))
        return out

    def restore(
        self,
        name: str,
        state: List[Tuple[float, int, Dict[str, np.ndarray]]],
    ) -> None:
        """Re-install a persisted snapshot for ``name``.

        Saved tiers whose step no longer exists in the config are dropped;
        configured tiers missing from the snapshot start fresh and
        self-heal from (cold-aware) raw on the next observe.
        """
        tiers = self._series.get(name)
        if tiers is None:
            tiers = self._series[name] = [
                _TierSeries(s) for s in self.config.steps
            ]
        by_step = {ts.step: ts for ts in tiers}
        for step, cursor, arrays in state:
            ts = by_step.get(float(step))
            if ts is not None and ts.cursor is None:
                ts.restore(cursor, arrays)

    def health_counters(self) -> Dict[str, float]:
        return {
            "telemetry.rollup.series_tracked": float(self.series_tracked),
            "telemetry.rollup.buckets_finalized": float(self.buckets_finalized),
            "telemetry.rollup.buckets_served": float(self.buckets_served),
            "telemetry.rollup.tier_hits": float(self.tier_hits),
            "telemetry.rollup.partial_hits": float(self.partial_hits),
            "telemetry.rollup.raw_fallbacks": float(self.raw_fallbacks),
        }
