"""Pipeline self-observability: the monitoring stack monitors itself.

Long-lived ODA deployments treat the monitoring pipeline as just another
production service: the bus, the collection agents and the store publish
their own meta-telemetry (delivery counts, scrape errors, dead-letter depth,
series counts) back onto the bus, where it lands in the store and can be
alerted on like any sensor.  :class:`HealthMonitor` does exactly that on a
period, and additionally drives the alert engine's stale-data checks so a
dead sampler raises an alert even when no data flows at all.

Metric names follow the ``telemetry.*`` subtree::

    telemetry.bus.delivered          telemetry.agent.<name>.scrape_errors
    telemetry.bus.dead_letters       telemetry.store.samples
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry
from repro.simulation.engine import PeriodicHandle, Simulator
from repro.telemetry.bus import MessageBus
from repro.telemetry.sample import SampleBatch

__all__ = ["HealthMonitor", "HEALTH_TOPIC"]

#: Bus topic health batches are published on.
HEALTH_TOPIC = "telemetry.health"

ProbeFn = Callable[[], Dict[str, float]]


class HealthMonitor:
    """Publishes pipeline self-metrics on a period.

    Parameters
    ----------
    bus:
        The bus to report on *and* publish to (health batches flow through
        the normal transport so they land in the store and alert engine).
    store:
        Optional store to report sample/series counts for.
    agents:
        Collection agents to report on.  The live list may be passed (as
        :class:`~repro.telemetry.collector.TelemetrySystem` does) so agents
        created later are picked up automatically.
    alerts:
        An :class:`~repro.telemetry.alerts.AlertEngine`, or a zero-argument
        callable returning one (or ``None``); its ``check_staleness`` is
        driven every period so no-data alerts fire on a silent pipeline.
    """

    def __init__(
        self,
        bus: MessageBus,
        store=None,
        agents: Optional[Sequence] = None,
        alerts: Union[None, object, Callable[[], object]] = None,
        period: float = 60.0,
        topic: str = HEALTH_TOPIC,
    ):
        self.bus = bus
        self.store = store
        self.agents = agents if agents is not None else []
        self._alerts = alerts
        self.period = period
        self.topic = topic
        self.ticks = 0
        self.probe_errors = 0
        self.last_probe_error = ""
        self._probes: List[ProbeFn] = []
        self._handle: Optional[PeriodicHandle] = None
        self._metrics: Optional[MetricsRegistry] = None

    def add_probe(self, probe: ProbeFn) -> ProbeFn:
        """Register an extra metrics provider (e.g. a streaming stage)."""
        self._probes.append(probe)
        return probe

    def _alert_engine(self):
        if callable(self._alerts):
            return self._alerts()
        return self._alerts

    # ------------------------------------------------------------------
    @property
    def metrics_registry(self) -> MetricsRegistry:
        """Typed instruments for the monitor's own counters."""
        if self._metrics is None:
            r = MetricsRegistry()
            r.counter("telemetry.health.ticks", "health reporting ticks",
                      fn=lambda: float(self.ticks))
            r.counter("telemetry.health.probe_errors",
                      "registered probes that raised during a health tick",
                      fn=lambda: float(self.probe_errors))
            self._metrics = r
        return self._metrics

    def metrics(self, now: float) -> Dict[str, float]:
        """One self-metrics snapshot across bus, agents, store and probes.

        A raising probe is isolated: its metrics are skipped for this tick,
        the failure is counted in ``telemetry.health.probe_errors``, and
        every other contributor still reports — the health tick itself must
        be as fault-tolerant as the pipeline it watches.
        """
        out = dict(self.bus.health_metrics())
        for agent in self.agents:
            out.update(agent.health_metrics())
        if self.store is not None:
            store_health = getattr(self.store, "health_metrics", None)
            if store_health is not None:
                out.update(store_health())
            else:  # duck-typed store without self-metrics
                out["telemetry.store.samples"] = float(self.store.samples_ingested)
                out["telemetry.store.series"] = float(len(self.store))
        for probe in self._probes:
            try:
                out.update(probe())
            except Exception as exc:  # noqa: BLE001 — isolate probe failures
                self.probe_errors += 1
                self.last_probe_error = repr(exc)
        out.update(self.metrics_registry.snapshot())
        return out

    def collect(self, now: float) -> SampleBatch:
        """Publish one health batch and run staleness checks; returns it."""
        self.ticks += 1
        batch = SampleBatch.from_mapping(now, self.metrics(now))
        self.bus.publish(self.topic, batch)
        engine = self._alert_engine()
        if engine is not None:
            engine.check_staleness(now)
        return batch

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._handle is not None and self._handle.active

    def start(self, sim: Simulator, start_delay: Optional[float] = None) -> None:
        """Begin periodic self-reporting on the simulator."""
        if self.running:
            return
        self._handle = sim.schedule_periodic(
            self.period,
            lambda s: self.collect(s.now),
            start_delay=self.period if start_delay is None else start_delay,
            label="telemetry:health",
            priority=20,  # after collection ticks: report this tick's counters
        )

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
