"""Sample batches: the wire format of the telemetry pipeline.

Samplers produce :class:`SampleBatch` objects — a timestamp plus parallel
arrays of metric names and values — which flow over the message bus into the
time-series store.  Batches use NumPy arrays rather than per-sample objects
so that a full-cluster scrape is a single vectorized append on the store
side (see the hpc-parallel guides: vectorize the hot path, avoid per-element
Python objects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SampleBatch", "merge_batches"]


@dataclass(frozen=True)
class SampleBatch:
    """A set of simultaneous samples taken at one timestamp.

    Attributes
    ----------
    time:
        Sample timestamp (simulation seconds).
    names:
        Tuple of metric names; parallel to ``values``.
    values:
        1-D ``float64`` array of sampled values.
    """

    time: float
    names: Tuple[str, ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        object.__setattr__(self, "values", values)
        if values.ndim != 1:
            raise ValueError(f"values must be 1-D, got shape {values.shape}")
        if len(self.names) != values.shape[0]:
            raise ValueError(
                f"{len(self.names)} names but {values.shape[0]} values"
            )

    @classmethod
    def from_mapping(cls, time: float, mapping: Dict[str, float]) -> "SampleBatch":
        """Build a batch from a ``{name: value}`` dict (iteration order kept)."""
        names = tuple(mapping)
        values = np.fromiter(mapping.values(), dtype=np.float64, count=len(names))
        return cls(time=time, names=names, values=values)

    def _name_index(self) -> Dict[str, int]:
        """Lazy ``name -> position`` map; duplicate names keep the last
        occurrence (last writer wins, matching store semantics)."""
        index = self.__dict__.get("_index")
        if index is None:
            index = {n: i for i, n in enumerate(self.names)}
            object.__setattr__(self, "_index", index)
        return index

    def get(self, name: str, default: Optional[float] = None) -> Optional[float]:
        """Value for ``name`` as a Python float, or ``default`` if absent.

        O(1) after the first lookup on a batch — the hot-path alternative to
        building a full :meth:`as_dict` per batch in streaming stages.
        """
        i = self._name_index().get(name)
        return default if i is None else float(self.values[i])

    def __contains__(self, name: str) -> bool:
        return name in self._name_index()

    def as_dict(self) -> Dict[str, float]:
        """Return ``{name: value}``; values as Python floats."""
        return dict(zip(self.names, self.values.tolist()))

    def __len__(self) -> int:
        return len(self.names)

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(zip(self.names, self.values.tolist()))

    def subset(self, names: Sequence[str]) -> "SampleBatch":
        """Return a batch restricted to ``names`` (missing names dropped)."""
        index = self._name_index()
        keep = [n for n in names if n in index]
        idx = np.fromiter((index[n] for n in keep), dtype=np.intp, count=len(keep))
        return SampleBatch(self.time, tuple(keep), self.values[idx])


def merge_batches(batches: Sequence[SampleBatch]) -> SampleBatch:
    """Merge simultaneous batches into one.

    All batches must share the same timestamp.  Later batches win on
    duplicate metric names, mirroring last-writer-wins store semantics.
    """
    if not batches:
        raise ValueError("cannot merge zero batches")
    time = batches[0].time
    for batch in batches[1:]:
        if batch.time != time:
            raise ValueError(
                f"cannot merge batches at different times: {time} vs {batch.time}"
            )
    if len(batches) == 1:
        return batches[0]
    merged: Dict[str, float] = {}
    for batch in batches:
        merged.update(zip(batch.names, batch.values.tolist()))
    return SampleBatch.from_mapping(time, merged)
