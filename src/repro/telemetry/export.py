"""Export utilities: dump store contents to CSV/JSON-friendly structures.

Production ODA stacks feed downstream consumers (dashboards, notebooks,
archival object stores); here we provide the minimal equivalents used by the
examples and by EXPERIMENTS.md generation — plus observability artifact
writers: Chrome trace-event JSON (loadable in ``chrome://tracing`` /
Perfetto), span JSONL round-trips, and Prometheus text snapshots.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.obs.trace import Span, Tracer, spans_to_chrome, spans_to_dicts
from repro.telemetry.store import TimeSeriesStore

__all__ = [
    "to_rows",
    "to_csv",
    "to_json",
    "write_csv",
    "write_chrome_trace",
    "write_spans_jsonl",
    "load_spans_jsonl",
    "write_prometheus",
]


def to_rows(
    store: TimeSeriesStore,
    names: Sequence[str],
    since: float,
    until: float,
    step: float,
    agg: str = "mean",
) -> List[Dict[str, float]]:
    """Aligned export: one dict per grid timestamp with a column per metric."""
    grid, matrix = store.align(names, since, until, step, agg=agg)
    rows: List[Dict[str, float]] = []
    for i, t in enumerate(grid):
        row: Dict[str, float] = {"time": float(t)}
        for j, name in enumerate(names):
            value = matrix[i, j]
            row[name] = float(value) if np.isfinite(value) else float("nan")
        rows.append(row)
    return rows


def to_csv(
    store: TimeSeriesStore,
    names: Sequence[str],
    since: float,
    until: float,
    step: float,
    agg: str = "mean",
) -> str:
    """Render the aligned export as a CSV string."""
    rows = to_rows(store, names, since, until, step, agg)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time", *names])
    for row in rows:
        writer.writerow([row["time"], *(row[n] for n in names)])
    return buffer.getvalue()


def write_csv(
    path: str,
    store: TimeSeriesStore,
    names: Sequence[str],
    since: float,
    until: float,
    step: float,
    agg: str = "mean",
) -> None:
    """Write the aligned export to ``path``."""
    with open(path, "w", newline="") as handle:
        handle.write(to_csv(store, names, since, until, step, agg))


def to_json(
    store: TimeSeriesStore,
    names: Optional[Sequence[str]] = None,
    since: float = float("-inf"),
    until: float = float("inf"),
) -> str:
    """Raw per-series JSON export (no alignment), NaNs rendered as null."""
    names = list(names) if names is not None else store.names()
    payload: Dict[str, Dict[str, list]] = {}
    for name in names:
        times, values = store.query(name, since, until)
        payload[name] = {
            "times": [float(t) for t in times],
            "values": [float(v) if np.isfinite(v) else None for v in values],
        }
    return json.dumps(payload)


# ----------------------------------------------------------------------
# Observability artifacts
# ----------------------------------------------------------------------
SpansLike = Union[Tracer, Iterable[Span]]


def _spans(source: SpansLike) -> List[Span]:
    return source.spans() if isinstance(source, Tracer) else list(source)


def write_chrome_trace(path: str, source: SpansLike) -> int:
    """Write spans as Chrome trace-event JSON; returns events written.

    The file loads directly in ``chrome://tracing`` or Perfetto: complete
    ``"X"`` events with microsecond timestamps relative to the earliest
    span, one track per trace.
    """
    payload = spans_to_chrome(_spans(source))
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return len(payload["traceEvents"])


def write_spans_jsonl(path: str, source: SpansLike) -> int:
    """Write one span dict per line; returns spans written."""
    dicts = spans_to_dicts(_spans(source))
    with open(path, "w") as handle:
        for d in dicts:
            handle.write(json.dumps(d))
            handle.write("\n")
    return len(dicts)


def load_spans_jsonl(path: str) -> List[Dict]:
    """Load span dicts written by :func:`write_spans_jsonl`."""
    out: List[Dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def write_prometheus(path: str, text: str) -> None:
    """Write a Prometheus text-exposition snapshot (e.g. from
    :meth:`~repro.telemetry.collector.TelemetrySystem.prometheus`)."""
    with open(path, "w") as handle:
        handle.write(text)
