"""Export utilities: dump store contents to CSV/JSON-friendly structures.

Production ODA stacks feed downstream consumers (dashboards, notebooks,
archival object stores); here we provide the minimal equivalents used by the
examples and by EXPERIMENTS.md generation.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.telemetry.store import TimeSeriesStore

__all__ = ["to_rows", "to_csv", "to_json", "write_csv"]


def to_rows(
    store: TimeSeriesStore,
    names: Sequence[str],
    since: float,
    until: float,
    step: float,
    agg: str = "mean",
) -> List[Dict[str, float]]:
    """Aligned export: one dict per grid timestamp with a column per metric."""
    grid, matrix = store.align(names, since, until, step, agg=agg)
    rows: List[Dict[str, float]] = []
    for i, t in enumerate(grid):
        row: Dict[str, float] = {"time": float(t)}
        for j, name in enumerate(names):
            value = matrix[i, j]
            row[name] = float(value) if np.isfinite(value) else float("nan")
        rows.append(row)
    return rows


def to_csv(
    store: TimeSeriesStore,
    names: Sequence[str],
    since: float,
    until: float,
    step: float,
    agg: str = "mean",
) -> str:
    """Render the aligned export as a CSV string."""
    rows = to_rows(store, names, since, until, step, agg)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time", *names])
    for row in rows:
        writer.writerow([row["time"], *(row[n] for n in names)])
    return buffer.getvalue()


def write_csv(
    path: str,
    store: TimeSeriesStore,
    names: Sequence[str],
    since: float,
    until: float,
    step: float,
    agg: str = "mean",
) -> None:
    """Write the aligned export to ``path``."""
    with open(path, "w", newline="") as handle:
        handle.write(to_csv(store, names, since, until, step, agg))


def to_json(
    store: TimeSeriesStore,
    names: Optional[Sequence[str]] = None,
    since: float = float("-inf"),
    until: float = float("inf"),
) -> str:
    """Raw per-series JSON export (no alignment), NaNs rendered as null."""
    names = list(names) if names is not None else store.names()
    payload: Dict[str, Dict[str, list]] = {}
    for name in names:
        times, values = store.query(name, since, until)
        payload[name] = {
            "times": [float(t) for t in times],
            "values": [float(v) if np.isfinite(v) else None for v in values],
        }
    return json.dumps(payload)
