"""Columnar in-memory time-series store.

The store is the archive tier of the telemetry pipeline: every metric gets
an append-only pair of NumPy arrays (timestamps, values) that grow
geometrically and are queried by binary search.  Reads return **views** onto
the underlying buffers (no copies — see the hpc-parallel guides), so
analytics over long windows are zero-copy until they explicitly transform.

Features mirrored from production HPC monitoring databases (DCDB/KairosDB,
LDMS+DSOS, Prometheus):

* last-writer-wins ingest from the message bus,
* time-range queries,
* downsampling/resampling with standard aggregations,
* multi-metric alignment onto a common time grid (the input shape every
  multivariate analytics model wants),
* optional retention limit per series.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StoreError, UnknownMetricError
from repro.telemetry.sample import SampleBatch

__all__ = ["SeriesBuffer", "TimeSeriesStore", "AGGREGATIONS"]


def _rate(values: np.ndarray) -> float:
    """Aggregation helper: total increase across the bucket (for counters).

    Reset-aware: a counter that resets mid-bucket (process restart, wrap)
    shows a negative step; like Prometheus' ``increase``, the post-reset
    value is taken as the increment from zero, so the total never goes
    negative from a reset.
    """
    if values.size < 2:
        return 0.0
    deltas = np.diff(values)
    resets = deltas < 0
    if resets.any():
        deltas = deltas.copy()
        deltas[resets] = values[1:][resets]
    return float(deltas.sum())


#: Named aggregation functions usable in :meth:`TimeSeriesStore.resample`.
AGGREGATIONS: Dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda v: float(np.mean(v)),
    "min": lambda v: float(np.min(v)),
    "max": lambda v: float(np.max(v)),
    "sum": lambda v: float(np.sum(v)),
    "last": lambda v: float(v[-1]),
    "first": lambda v: float(v[0]),
    "std": lambda v: float(np.std(v)),
    "median": lambda v: float(np.median(v)),
    "count": lambda v: float(v.size),
    "p95": lambda v: float(np.percentile(v, 95)),
    "rate": _rate,
}

_INITIAL_CAPACITY = 64


class SeriesBuffer:
    """Append-only (time, value) series with geometric growth.

    Timestamps must be non-decreasing; equal timestamps overwrite in place
    (last writer wins), which is how repeated publishes of the same scrape
    behave in real stores.
    """

    def __init__(self, name: str, capacity: int = _INITIAL_CAPACITY):
        self.name = name
        self._times = np.empty(capacity, dtype=np.float64)
        self._values = np.empty(capacity, dtype=np.float64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def times(self) -> np.ndarray:
        """View of the stored timestamps (do not mutate)."""
        return self._times[: self._size]

    @property
    def values(self) -> np.ndarray:
        """View of the stored values (do not mutate)."""
        return self._values[: self._size]

    def _grow(self, needed: int) -> None:
        capacity = self._times.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity * 2)
        for attr in ("_times", "_values"):
            old = getattr(self, attr)
            new = np.empty(new_capacity, dtype=np.float64)
            new[: self._size] = old[: self._size]
            setattr(self, attr, new)

    def append(self, time: float, value: float) -> None:
        """Append one sample; overwrite if ``time`` equals the last sample."""
        if self._size and time < self._times[self._size - 1]:
            raise StoreError(
                f"series {self.name}: out-of-order append at t={time} "
                f"(last t={self._times[self._size - 1]})"
            )
        if self._size and time == self._times[self._size - 1]:
            self._values[self._size - 1] = value
            return
        self._grow(self._size + 1)
        self._times[self._size] = time
        self._values[self._size] = value
        self._size += 1

    def append_many(self, times: np.ndarray, values: np.ndarray) -> None:
        """Vectorized bulk append of already-sorted, strictly newer samples."""
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.shape != values.shape or times.ndim != 1:
            raise StoreError("append_many arrays must be 1-D and equal length")
        if times.size == 0:
            return
        if np.any(np.diff(times) < 0):
            raise StoreError(f"series {self.name}: times must be non-decreasing")
        if self._size and times[0] <= self._times[self._size - 1]:
            raise StoreError(
                f"series {self.name}: bulk append must start after last sample"
            )
        self._grow(self._size + times.size)
        self._times[self._size : self._size + times.size] = times
        self._values[self._size : self._size + times.size] = values
        self._size += times.size

    def range(self, since: float, until: float) -> Tuple[np.ndarray, np.ndarray]:
        """Return (times, values) views for samples with ``since <= t <= until``."""
        lo = int(np.searchsorted(self.times, since, side="left"))
        hi = int(np.searchsorted(self.times, until, side="right"))
        return self._times[lo:hi], self._values[lo:hi]

    def latest(self) -> Tuple[float, float]:
        """The most recent (time, value); raises if empty."""
        if not self._size:
            raise StoreError(f"series {self.name} is empty")
        i = self._size - 1
        return float(self._times[i]), float(self._values[i])

    def value_at(self, time: float) -> float:
        """Last-observation-carried-forward value at ``time``.

        Raises :class:`StoreError` if ``time`` precedes the first sample.
        """
        idx = int(np.searchsorted(self.times, time, side="right")) - 1
        if idx < 0:
            raise StoreError(
                f"series {self.name}: no sample at or before t={time}"
            )
        return float(self._values[idx])

    def trim_before(self, cutoff: float) -> int:
        """Drop samples strictly older than ``cutoff``; returns count dropped.

        Compacts in place so the buffer does not grow without bound under a
        retention policy.
        """
        lo = int(np.searchsorted(self.times, cutoff, side="left"))
        if lo == 0:
            return 0
        keep = self._size - lo
        self._times[:keep] = self._times[lo : self._size]
        self._values[:keep] = self._values[lo : self._size]
        self._size = keep
        return lo


class TimeSeriesStore:
    """Named collection of :class:`SeriesBuffer` with query helpers.

    Parameters
    ----------
    retention:
        If given, samples older than ``latest_time - retention`` seconds are
        trimmed opportunistically on ingest.
    """

    def __init__(self, retention: Optional[float] = None):
        self._series: Dict[str, SeriesBuffer] = {}
        self.retention = retention
        self.samples_ingested = 0
        self._latest_time = float("-inf")

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, topic: str, batch: SampleBatch) -> None:
        """Bus-compatible sink: store every sample of ``batch``.

        The ``topic`` is ignored for storage purposes (metric names are
        already fully qualified) but kept in the signature so the store can
        be subscribed directly: ``bus.subscribe("#", store.ingest)``.
        """
        for name, value in batch:
            self.append(name, batch.time, value)

    def append(self, name: str, time: float, value: float) -> None:
        """Append one sample to ``name``, creating the series if needed."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = SeriesBuffer(name)
        series.append(time, value)
        self.samples_ingested += 1
        if time > self._latest_time:
            self._latest_time = time
            if self.retention is not None:
                self._apply_retention()

    def append_many(self, name: str, times: np.ndarray, values: np.ndarray) -> None:
        """Vectorized bulk append to a single series."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = SeriesBuffer(name)
        times = np.asarray(times, dtype=np.float64)
        series.append_many(times, values)
        self.samples_ingested += int(times.size)
        if times.size and float(times[-1]) > self._latest_time:
            self._latest_time = float(times[-1])
            if self.retention is not None:
                self._apply_retention()

    def _apply_retention(self) -> None:
        cutoff = self._latest_time - float(self.retention or 0)
        for series in self._series.values():
            series.trim_before(cutoff)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __len__(self) -> int:
        return len(self._series)

    def series(self, name: str) -> SeriesBuffer:
        try:
            return self._series[name]
        except KeyError:
            raise UnknownMetricError(name) from None

    @property
    def latest_time(self) -> float:
        """Largest timestamp ingested so far (-inf when empty)."""
        return self._latest_time

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self, name: str, since: float = float("-inf"), until: float = float("inf")
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Raw range query; returns (times, values) array views."""
        return self.series(name).range(since, until)

    def latest(self, name: str) -> Tuple[float, float]:
        """Most recent (time, value) for ``name``."""
        return self.series(name).latest()

    def value_at(self, name: str, time: float) -> float:
        """Last-observation-carried-forward lookup."""
        return self.series(name).value_at(time)

    def resample(
        self,
        name: str,
        since: float,
        until: float,
        step: float,
        agg: str = "mean",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Downsample a series onto buckets of width ``step``.

        Buckets are left-closed ``[t, t+step)``; each output timestamp is the
        bucket start.  When ``until - since`` is not an exact multiple of
        ``step``, the final bucket is partial and covers ``[t, until]``
        (closed, so a sample exactly at ``until`` is included rather than
        silently dropped).  Empty buckets yield ``NaN`` so gaps stay visible
        to descriptive analytics rather than being silently interpolated.
        """
        if step <= 0:
            raise StoreError(f"step must be positive, got {step}")
        try:
            agg_fn = AGGREGATIONS[agg]
        except KeyError:
            raise StoreError(
                f"unknown aggregation {agg!r}; valid: {sorted(AGGREGATIONS)}"
            ) from None
        if until <= since:
            return np.empty(0), np.empty(0)
        times, values = self.query(name, since, until)
        n_buckets = int(np.ceil((until - since) / step - 1e-9))
        edges = since + np.arange(n_buckets + 1) * step
        out_times = edges[:-1]
        out = np.full(out_times.shape, np.nan)
        if times.size:
            # Vectorized bucketing: one searchsorted, then per-bucket slices.
            idx = np.searchsorted(times, edges)
            # The query is already capped at `until`, so the (possibly
            # partial) final bucket absorbs every remaining sample.
            idx[-1] = times.size
            for i in range(out_times.size):
                lo, hi = idx[i], idx[i + 1]
                if hi > lo:
                    out[i] = agg_fn(values[lo:hi])
        return out_times, out

    def align(
        self,
        names: Sequence[str],
        since: float,
        until: float,
        step: float,
        agg: str = "mean",
        fill: str = "ffill",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Align several series onto a common grid.

        Returns ``(grid, matrix)`` where ``matrix[i, j]`` is series ``j`` at
        grid point ``i``.  ``fill`` controls gap handling: ``"ffill"``
        carries the last observation forward, ``"nan"`` leaves gaps.

        This produces exactly the dense design matrix multivariate analytics
        (PCA, anomaly detectors, regressors) consume.
        """
        if fill not in ("ffill", "nan"):
            raise StoreError(f"unknown fill mode {fill!r}")
        columns = []
        grid = None
        for name in names:
            t, v = self.resample(name, since, until, step, agg)
            if grid is None:
                grid = t
            if fill == "ffill" and v.size:
                # Vectorized forward fill of NaNs.
                mask = np.isnan(v)
                if mask.any():
                    idx = np.where(~mask, np.arange(v.size), 0)
                    np.maximum.accumulate(idx, out=idx)
                    v = v[idx]
                    # Leading NaNs (before first sample) remain NaN.
                    if mask[0]:
                        first_valid = int(np.argmax(~mask)) if (~mask).any() else v.size
                        v[:first_valid] = np.nan
            columns.append(v)
        if grid is None:
            return np.empty(0), np.empty((0, 0))
        matrix = np.column_stack(columns) if columns else np.empty((grid.size, 0))
        return grid, matrix

    def select(self, pattern: str) -> List[str]:
        """Names of stored series matching a shell-style pattern."""
        import fnmatch

        return [n for n in self.names() if fnmatch.fnmatchcase(n, pattern)]
