"""Columnar in-memory time-series store.

The store is the archive tier of the telemetry pipeline: every metric gets
an append-only pair of NumPy arrays (timestamps, values) that grow
geometrically and are queried by binary search.  Reads return **views** onto
the underlying buffers (no copies — see the hpc-parallel guides), so
analytics over long windows are zero-copy until they explicitly transform.

Features mirrored from production HPC monitoring databases (DCDB/KairosDB,
LDMS+DSOS, Prometheus):

* last-writer-wins ingest from the message bus,
* staged batch ingest: bus batches land in cheap per-series staging buffers
  and are flushed to the columnar arrays in vectorized chunks (flush happens
  automatically before any read, so queries always see every sample),
* amortized retention: instead of sweeping every series on each new
  timestamp, a series is trimmed when its stale fraction crosses a slack
  watermark (plus one round-robin peer per flush, so cold series are
  eventually reclaimed too); reads enforce the exact cutoff for the series
  being read,
* time-range queries,
* downsampling/resampling with standard aggregations — the common ones
  (``mean/min/max/sum/count/first/last``) run as vectorized ``reduceat``
  kernels keyed off a single ``searchsorted``,
* multi-metric alignment onto a common time grid (the input shape every
  multivariate analytics model wants), computing the bucket-edge grid once
  and sharing it across all series,
* optional retention limit per series.

Thread safety: because *reads mutate* (flush-on-read moves staged samples
into the columnar arrays, and reads enforce the exact retention cutoff),
every public entry point — ingest and query alike — takes one per-store
reentrant lock.  This is what lets the serving front door
(:mod:`repro.telemetry.serving`) run a pool of reader threads against a
store that a collector thread is still ingesting into.  Note that ``query``
returns *views*; a caller that holds a view across subsequent ingest may
observe retention compaction.  Consumers that cache results (the serving
result cache) copy under the lock.
"""

from __future__ import annotations

import fnmatch
import os
import re
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StoreError, UnknownMetricError
from repro.obs import OBS as _OBS
from repro.obs.metrics import MetricsRegistry
from repro.telemetry.archive import ArchiveConfig, ArchiveTier
from repro.telemetry.durability import (
    JournalConfig,
    RecoveryStats,
    WriteAheadJournal,
    iter_records,
    window_checksums as _window_checksums,
)
from repro.telemetry.rollup import RollupConfig, RollupEngine
from repro.telemetry.sample import SampleBatch

__all__ = [
    "SeriesBuffer",
    "TimeSeriesStore",
    "AGGREGATIONS",
    "VECTORIZED_AGGREGATIONS",
    "bucket_edges",
    "resample_onto",
    "forward_fill",
    "check_resample_args",
]


def _rate(values: np.ndarray) -> float:
    """Aggregation helper: total increase across the bucket (for counters).

    Reset-aware: a counter that resets mid-bucket (process restart, wrap)
    shows a negative step; like Prometheus' ``increase``, the post-reset
    value is taken as the increment from zero, so the total never goes
    negative from a reset.
    """
    if values.size < 2:
        return 0.0
    deltas = np.diff(values)
    resets = deltas < 0
    if resets.any():
        deltas = deltas.copy()
        deltas[resets] = values[1:][resets]
    return float(deltas.sum())


#: Named aggregation functions usable in :meth:`TimeSeriesStore.resample`.
#: These scalar callables are the semantic reference; where a vectorized
#: kernel exists (:data:`VECTORIZED_AGGREGATIONS`) it must agree with them.
AGGREGATIONS: Dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda v: float(np.mean(v)),
    "min": lambda v: float(np.min(v)),
    "max": lambda v: float(np.max(v)),
    "sum": lambda v: float(np.sum(v)),
    "last": lambda v: float(v[-1]),
    "first": lambda v: float(v[0]),
    "std": lambda v: float(np.std(v)),
    "median": lambda v: float(np.median(v)),
    "count": lambda v: float(v.size),
    "p95": lambda v: float(np.percentile(v, 95)),
    "rate": _rate,
}


# Vectorized bucket kernels.  Each receives the in-range ``values`` plus the
# start/end sample index of every *non-empty* bucket (strictly increasing
# starts, ends[-1] == values.size) and returns one value per bucket.  Empty
# buckets never reach a kernel — the caller leaves them NaN.  That holds for
# ``count`` and ``sum`` too: a gap bucket is "no data" (NaN), never 0, in
# the scalar engine, the vectorized engine AND the rollup tier-serving path
# (a materialized tier with no bucket at a position fills NaN) — the three
# must stay in lockstep or tier-served answers diverge from raw on gaps.  Consecutive
# non-empty buckets are contiguous through any empty buckets between them
# (empty buckets have zero width in sample space), which is exactly the
# segment layout ``reduceat`` reduces over.
VECTORIZED_AGGREGATIONS: Dict[str, Callable[..., np.ndarray]] = {
    "sum": lambda v, s, e: np.add.reduceat(v, s),
    "mean": lambda v, s, e: np.add.reduceat(v, s) / (e - s),
    "min": lambda v, s, e: np.minimum.reduceat(v, s),
    "max": lambda v, s, e: np.maximum.reduceat(v, s),
    "count": lambda v, s, e: (e - s).astype(np.float64),
    "first": lambda v, s, e: v[s],
    "last": lambda v, s, e: v[e - 1],
}

_INITIAL_CAPACITY = 64

#: Bound on the per-store cache of compiled ``select`` patterns.
_SELECT_CACHE_CAP = 256


# ---------------------------------------------------------------------------
# Resample kernels, shared by TimeSeriesStore and the federated query layer
# (repro.telemetry.distributed): any engine that can produce the in-range
# (times, values) of a series reuses exactly these functions, so single-store
# and sharded/federated results are bit-for-bit identical by construction.
# ---------------------------------------------------------------------------
def bucket_edges(since: float, until: float, step: float) -> np.ndarray:
    """Bucket-edge grid for ``[since, until]`` in steps of ``step``."""
    n_buckets = int(np.ceil((until - since) / step - 1e-9))
    return since + np.arange(n_buckets + 1) * step


def check_resample_args(step: float, agg: str, engine: str) -> None:
    """Validate shared resample/align arguments."""
    if step <= 0:
        raise StoreError(f"step must be positive, got {step}")
    if agg not in AGGREGATIONS:
        raise StoreError(
            f"unknown aggregation {agg!r}; valid: {sorted(AGGREGATIONS)}"
        )
    if engine not in ("auto", "vectorized", "scalar"):
        raise StoreError(
            f"unknown engine {engine!r}; valid: auto, vectorized, scalar"
        )


def resample_onto(
    times: np.ndarray,
    values: np.ndarray,
    edges: np.ndarray,
    agg: str,
    engine: str = "auto",
) -> np.ndarray:
    """Aggregate in-range samples onto the buckets defined by ``edges``.

    The caller guarantees ``times`` is already restricted to the query range
    (the final edge absorbs every remaining sample, so a closed upper bound
    works).  Empty buckets yield NaN.
    """
    out = np.full(edges.size - 1, np.nan)
    if not times.size:
        return out
    # One searchsorted keys every kernel: sample index of each edge.
    idx = np.searchsorted(times, edges)
    # The query is already capped at `until`, so the (possibly partial)
    # final bucket absorbs every remaining sample.
    idx[-1] = times.size
    starts = idx[:-1]
    ends = idx[1:]
    kernel = VECTORIZED_AGGREGATIONS.get(agg) if engine != "scalar" else None
    if kernel is not None:
        nonempty = ends > starts
        if nonempty.any():
            out[nonempty] = kernel(values, starts[nonempty], ends[nonempty])
        return out
    if engine == "vectorized":
        raise StoreError(
            f"no vectorized kernel for {agg!r}; "
            f"available: {sorted(VECTORIZED_AGGREGATIONS)}"
        )
    agg_fn = AGGREGATIONS[agg]
    for i in range(out.size):
        lo, hi = starts[i], ends[i]
        if hi > lo:
            out[i] = agg_fn(values[lo:hi])
    return out


def forward_fill(v: np.ndarray) -> np.ndarray:
    """Vectorized forward fill of NaNs; leading NaNs stay NaN."""
    if not v.size:
        return v
    mask = np.isnan(v)
    if not mask.any():
        return v
    idx = np.where(~mask, np.arange(v.size), 0)
    np.maximum.accumulate(idx, out=idx)
    v = v[idx]
    if mask[0]:
        first_valid = int(np.argmax(~mask)) if (~mask).any() else v.size
        v[:first_valid] = np.nan
    return v


class SeriesBuffer:
    """Append-only (time, value) series with geometric growth.

    Timestamps must be non-decreasing; equal timestamps overwrite in place
    (last writer wins), which is how repeated publishes of the same scrape
    behave in real stores.
    """

    def __init__(self, name: str, capacity: int = _INITIAL_CAPACITY):
        self.name = name
        self._times = np.empty(capacity, dtype=np.float64)
        self._values = np.empty(capacity, dtype=np.float64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def times(self) -> np.ndarray:
        """View of the stored timestamps (do not mutate)."""
        return self._times[: self._size]

    @property
    def values(self) -> np.ndarray:
        """View of the stored values (do not mutate)."""
        return self._values[: self._size]

    def _grow(self, needed: int) -> None:
        capacity = self._times.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity * 2)
        for attr in ("_times", "_values"):
            old = getattr(self, attr)
            new = np.empty(new_capacity, dtype=np.float64)
            new[: self._size] = old[: self._size]
            setattr(self, attr, new)

    def append(self, time: float, value: float) -> None:
        """Append one sample; overwrite if ``time`` equals the last sample."""
        if self._size and time < self._times[self._size - 1]:
            raise StoreError(
                f"series {self.name}: out-of-order append at t={time} "
                f"(last t={self._times[self._size - 1]})"
            )
        if self._size and time == self._times[self._size - 1]:
            self._values[self._size - 1] = value
            return
        self._grow(self._size + 1)
        self._times[self._size] = time
        self._values[self._size] = value
        self._size += 1

    def append_many(self, times: np.ndarray, values: np.ndarray) -> None:
        """Vectorized bulk append of already-sorted samples.

        Must start at or after the last stored timestamp; samples whose
        timestamp equals the last stored one overwrite it in place (last
        writer wins), matching :meth:`append` applied sample by sample.
        """
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.shape != values.shape or times.ndim != 1:
            raise StoreError("append_many arrays must be 1-D and equal length")
        if times.size == 0:
            return
        if np.any(np.diff(times) < 0):
            raise StoreError(f"series {self.name}: times must be non-decreasing")
        if self._size:
            last = self._times[self._size - 1]
            if times[0] < last:
                raise StoreError(
                    f"series {self.name}: bulk append must start at or after "
                    f"the last sample (t={times[0]} < last t={last})"
                )
            head = int(np.searchsorted(times, last, side="right"))
            if head:
                # Leading samples share the last stored timestamp: collapse
                # them onto it, keeping the final writer's value.
                self._values[self._size - 1] = values[head - 1]
                times = times[head:]
                values = values[head:]
                if times.size == 0:
                    return
        self._grow(self._size + times.size)
        self._times[self._size : self._size + times.size] = times
        self._values[self._size : self._size + times.size] = values
        self._size += times.size

    def range(self, since: float, until: float) -> Tuple[np.ndarray, np.ndarray]:
        """Return (times, values) views for samples with ``since <= t <= until``."""
        lo = int(np.searchsorted(self.times, since, side="left"))
        hi = int(np.searchsorted(self.times, until, side="right"))
        return self._times[lo:hi], self._values[lo:hi]

    def latest(self) -> Tuple[float, float]:
        """The most recent (time, value); raises if empty."""
        if not self._size:
            raise StoreError(f"series {self.name} is empty")
        i = self._size - 1
        return float(self._times[i]), float(self._values[i])

    def value_at(self, time: float) -> float:
        """Last-observation-carried-forward value at ``time``.

        Raises :class:`StoreError` if ``time`` precedes the first sample.
        """
        idx = int(np.searchsorted(self.times, time, side="right")) - 1
        if idx < 0:
            raise StoreError(
                f"series {self.name}: no sample at or before t={time}"
            )
        return float(self._values[idx])

    def trim_before(self, cutoff: float) -> int:
        """Drop samples strictly older than ``cutoff``; returns count dropped.

        Compacts in place so the buffer does not grow without bound under a
        retention policy.
        """
        lo = int(np.searchsorted(self.times, cutoff, side="left"))
        if lo == 0:
            return 0
        keep = self._size - lo
        self._times[:keep] = self._times[lo : self._size]
        self._values[:keep] = self._values[lo : self._size]
        self._size = keep
        return lo


class _Stage:
    """Per-series staging buffer: plain Python lists, flushed in chunks."""

    __slots__ = ("times", "values", "last_t")

    def __init__(self, last_t: float):
        self.times: List[float] = []
        self.values: List[float] = []
        self.last_t = last_t


class TimeSeriesStore:
    """Named collection of :class:`SeriesBuffer` with query helpers.

    Parameters
    ----------
    retention:
        If given, samples older than ``latest_time - retention`` seconds are
        trimmed opportunistically on ingest.  The ingest path trims a series
        only when its stale fraction exceeds ``retention_slack`` (amortized
        O(1) per sample instead of an O(total series) sweep per new
        timestamp); any read of a series first enforces the exact cutoff, so
        queries never observe samples older than the retention window.
    retention_slack:
        High-watermark fraction in ``[0, 1)``: on the ingest path a series
        is compacted once at least this fraction of its samples is stale.
        ``0.0`` trims eagerly on every flush.
    flush_threshold:
        Number of staged samples at which a series' staging buffer is
        flushed to its columnar arrays.  Reads flush implicitly, so this
        only tunes ingest chunking, never visibility.
    rollups:
        Enable materialized downsample cascades (:mod:`.rollup`).  Pass
        ``True`` for the default 10s/1m/1h cascade, a
        :class:`~repro.telemetry.rollup.RollupConfig`, or its
        ``to_dict()`` form.  ``resample``/``align`` then transparently
        serve eligible buckets from the coarsest sufficient tier,
        bit-identical to raw reduction.
    archive:
        Enable the compressed cold tier (:mod:`.archive`).  Pass ``True``
        for defaults, an :class:`~repro.telemetry.archive.ArchiveConfig`,
        or its ``to_dict()`` form.  The retention sweep then *demotes*
        expiring samples into immutable Gorilla-coded chunks instead of
        deleting them, and reads below the hot window decode cold chunks
        straight into the shared resample kernels.
    """

    def __init__(
        self,
        retention: Optional[float] = None,
        retention_slack: float = 0.25,
        flush_threshold: int = 256,
        rollups=None,
        archive=None,
        journal=None,
    ):
        if not 0.0 <= retention_slack < 1.0:
            raise StoreError(
                f"retention_slack must be in [0, 1), got {retention_slack}"
            )
        if flush_threshold < 1:
            raise StoreError(
                f"flush_threshold must be >= 1, got {flush_threshold}"
            )
        self._series: Dict[str, SeriesBuffer] = {}
        self._staging: Dict[str, _Stage] = {}
        self.retention = retention
        self.retention_slack = retention_slack
        self.flush_threshold = flush_threshold
        self.rollups: Optional[RollupEngine] = None
        if rollups:
            if isinstance(rollups, RollupConfig):
                cfg = rollups
            elif isinstance(rollups, dict):
                cfg = RollupConfig.from_dict(rollups)
            else:
                cfg = RollupConfig()
            self.rollups = RollupEngine(
                cfg,
                fetch=self._rollup_fetch,
                query_fetch=self._tiered_range,
            )
        self.archive: Optional[ArchiveTier] = None
        if archive:
            if isinstance(archive, ArchiveConfig):
                acfg = archive
            elif isinstance(archive, dict):
                acfg = ArchiveConfig.from_dict(archive)
            else:
                acfg = ArchiveConfig()
            self.archive = ArchiveTier(acfg)
        self.samples_ingested = 0
        self.flushes = 0
        self.retention_trims = 0
        self.samples_trimmed = 0
        self._latest_time = float("-inf")
        self._names_cache: Optional[List[str]] = None
        self._select_cache: Dict[str, Callable] = {}
        self._sweep_queue: List[str] = []
        self._metrics: Optional[MetricsRegistry] = None
        # Reentrant because reads nest (align -> resample_column -> query)
        # and rollup maintenance re-enters via the fetch hooks.
        self._lock = threading.RLock()
        # Durability: write-ahead journal + crash-recovery bookkeeping.
        self._journal: Optional[WriteAheadJournal] = None
        self._journal_names: Dict[Tuple[str, ...], int] = {}
        self._replaying = False
        self.corrupt_artifacts = 0  # damaged persisted artifacts degraded at load
        self.repaired_samples = 0  # samples spliced in by anti-entropy repair
        self.recovery: Optional[RecoveryStats] = None
        if journal:
            if isinstance(journal, JournalConfig):
                jcfg = journal
            elif isinstance(journal, dict):
                jcfg = JournalConfig(**journal)
            else:
                jcfg = JournalConfig(dir=os.fspath(journal))
            self.recovery = self._recover_journal(jcfg)
            self._journal = WriteAheadJournal(
                jcfg, start_seq=self.recovery.last_seq + 1
            )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, topic: str, batch: SampleBatch) -> None:
        """Bus-compatible sink: store every sample of ``batch``.

        The ``topic`` is ignored for storage purposes (metric names are
        already fully qualified) but kept in the signature so the store can
        be subscribed directly: ``bus.subscribe("#", store.ingest)``.

        Samples land in per-series staging buffers (two Python list appends
        per sample) and are flushed to the columnar arrays in vectorized
        chunks of ``flush_threshold``; reads flush implicitly first, so this
        is invisible to queries.
        """
        if _OBS.enabled:
            with _OBS.tracer.span(
                "store.ingest", sim_time=batch.time, samples=len(batch)
            ):
                return self._ingest(topic, batch)
        return self._ingest(topic, batch)

    def _journal_names_id(self, names: Tuple[str, ...]) -> int:
        """Intern a name tuple in the journal (mirrors ring interning)."""
        names_id = self._journal_names.get(names)
        if names_id is None:
            # max+1, not len(): the table is seeded from recovery, so ids
            # must extend the journal's numbering, never reuse it.
            names_id = 1 + max(self._journal_names.values(), default=-1)
            self._journal_names[names] = names_id
            self._journal.append_names(names_id, names)
        return names_id

    def _ingest(self, topic: str, batch: SampleBatch) -> None:
        with self._lock:
            if self._journal is not None and not self._replaying:
                names = tuple(batch.names)
                self._journal.append_batch(
                    self._journal_names_id(names), batch.time, batch.values
                )
            t = batch.time
            staging = self._staging
            threshold = self.flush_threshold
            for name, value in zip(batch.names, batch.values.tolist()):
                stage = staging.get(name)
                if stage is None:
                    stage = staging[name] = _Stage(self._last_time_of(name))
                if t < stage.last_t:
                    raise StoreError(
                        f"series {name}: out-of-order ingest at t={t} "
                        f"(last t={stage.last_t})"
                    )
                if t == stage.last_t and stage.times:
                    stage.values[-1] = value  # last writer wins in staging too
                else:
                    stage.times.append(t)
                    stage.values.append(value)
                    stage.last_t = t
                    if len(stage.times) >= threshold:
                        self._flush_stage(name, stage)
            self.samples_ingested += len(batch.names)
            if t > self._latest_time:
                self._latest_time = t

    def _last_time_of(self, name: str) -> float:
        """Last stored timestamp of ``name``, creating the series if needed."""
        buf = self._series.get(name)
        if buf is None:
            buf = self._series[name] = SeriesBuffer(name)
            self._names_cache = None
        return float(buf._times[buf._size - 1]) if buf._size else float("-inf")

    def _flush_stage(self, name: str, stage: _Stage) -> None:
        """Move one series' staged samples into its columnar buffer."""
        buf = self._series[name]
        times = np.asarray(stage.times, dtype=np.float64)
        values = np.asarray(stage.values, dtype=np.float64)
        stage.times = []
        stage.values = []
        buf.append_many(times, values)
        self.flushes += 1
        self._observe_rollups(buf)
        if self.retention is not None:
            self._maybe_trim(buf, exact=False)
            self._sweep_one()

    def _observe_rollups(self, buf: SeriesBuffer) -> None:
        """Mutation epilogue: finalize any tier buckets the new tail
        completed.  Runs before the retention sweep so finalization reads
        samples about to be demoted/trimmed while they are still hot."""
        if self.rollups is None or not buf._size:
            return
        t_first = float(buf._times[0])
        if self.archive is not None and buf.name in self.archive:
            t_first = min(t_first, self.archive.first_time(buf.name))
        self.rollups.observe(
            buf.name, t_first, float(buf._times[buf._size - 1])
        )

    def flush(self, name: Optional[str] = None) -> int:
        """Flush staged samples for ``name`` (or every series) to columnar
        storage; returns the number of samples flushed.

        Reads flush the touched series implicitly — this is only needed to
        force full compaction, e.g. before persisting or at shutdown.
        """
        if _OBS.enabled:
            with _OBS.tracer.span("store.flush") as sp:
                flushed = self._flush(name)
                sp.set_attr("samples", flushed)
                return flushed
        return self._flush(name)

    def _flush(self, name: Optional[str] = None) -> int:
        with self._lock:
            flushed = 0
            if name is not None:
                stage = self._staging.get(name)
                if stage is not None and stage.times:
                    flushed = len(stage.times)
                    self._flush_stage(name, stage)
                return flushed
            for series_name, stage in self._staging.items():
                if stage.times:
                    flushed += len(stage.times)
                    self._flush_stage(series_name, stage)
            return flushed

    def append(self, name: str, time: float, value: float) -> None:
        """Append one sample to ``name``, creating the series if needed."""
        with self._lock:
            if self._journal is not None and not self._replaying:
                self._journal.append_many(name, (float(time),), (float(value),))
            self._last_time_of(name)  # ensure the series exists
            buf = self._series[name]
            stage = self._staging.get(name)
            if stage is not None:
                if stage.times:
                    self._flush_stage(name, stage)
                if time > stage.last_t:
                    stage.last_t = time
            buf.append(time, value)
            self.samples_ingested += 1
            if time > self._latest_time:
                self._latest_time = time
            self._observe_rollups(buf)
            if self.retention is not None:
                self._maybe_trim(buf, exact=False)
                self._sweep_one()

    def append_many(self, name: str, times: np.ndarray, values: np.ndarray) -> None:
        """Vectorized bulk append to a single series."""
        with self._lock:
            times = np.asarray(times, dtype=np.float64)
            if self._journal is not None and not self._replaying:
                self._journal.append_many(name, times, values)
            self._last_time_of(name)  # ensure the series exists
            buf = self._series[name]
            stage = self._staging.get(name)
            if stage is not None and stage.times:
                self._flush_stage(name, stage)
            buf.append_many(times, values)
            self.samples_ingested += int(times.size)
            if times.size:
                last = float(times[-1])
                if stage is not None and last > stage.last_t:
                    stage.last_t = last
                if last > self._latest_time:
                    self._latest_time = last
            self._observe_rollups(buf)
            if self.retention is not None:
                self._maybe_trim(buf, exact=False)
                self._sweep_one()

    def append_block(
        self, names: Sequence[str], times: np.ndarray, rows: np.ndarray
    ) -> None:
        """Columnar bulk append: one shared time axis, one column per series.

        Semantically identical to calling :meth:`append_many` once per
        ``names[i]`` with ``rows[:, i]``, but the shared validation (dtype
        coercion, ordering check, latest-time bookkeeping) is hoisted out
        of the per-series loop and a series whose buffer simply extends
        skips straight to the slice copy.  This is the shard worker's
        apply path: with wide fleet scrapes (thousands of series, a few
        rows per flush) the per-series call overhead is the whole cost, so
        the hoisting is what the scale-out ingest throughput rests on.
        """
        times = np.asarray(times, dtype=np.float64)
        rows = np.asarray(rows, dtype=np.float64)
        n = times.size
        if times.ndim != 1 or rows.ndim != 2 or rows.shape[0] != n or \
                rows.shape[1] != len(names):
            raise StoreError(
                "append_block needs times[n] and rows[n, len(names)]"
            )
        if n == 0 or not names:
            return
        if np.any(np.diff(times) < 0):
            raise StoreError("append_block: times must be non-decreasing")
        with self._lock:
            if self._journal is not None and not self._replaying:
                self._journal.append_block(
                    self._journal_names_id(tuple(names)), times, rows
                )
            series = self._series
            staging = self._staging
            last = float(times[-1])
            t0 = times[0]
            for i, name in enumerate(names):
                buf = series.get(name)
                if buf is None:
                    buf = series[name] = SeriesBuffer(name)
                    self._names_cache = None
                stage = staging.get(name)
                if stage is not None:
                    if stage.times:
                        self._flush_stage(name, stage)
                    if last > stage.last_t:
                        stage.last_t = last
                size = buf._size
                if size and t0 <= buf._times[size - 1]:
                    # Overlaps the stored tail: let append_many handle the
                    # last-writer-wins collapse (and ordering errors).
                    buf.append_many(times, rows[:, i])
                else:
                    end = size + n
                    buf._grow(end)
                    buf._times[size:end] = times
                    buf._values[size:end] = rows[:, i]
                    buf._size = end
            self.samples_ingested += n * len(names)
            if last > self._latest_time:
                self._latest_time = last
            if self.rollups is not None:
                for name in names:
                    self._observe_rollups(series[name])
            if self.retention is not None:
                for name in names:
                    self._maybe_trim(series[name], exact=False)
                self._sweep_one()

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def _maybe_trim(self, buf: SeriesBuffer, exact: bool) -> None:
        """Trim ``buf`` to the retention window.

        With ``exact=False`` (ingest path) the trim is skipped until the
        stale fraction crosses ``retention_slack``, amortizing the memmove;
        with ``exact=True`` (read path) the cutoff is enforced strictly.

        With an archive tier attached, the expiring prefix is **demoted**
        into compressed cold chunks before it leaves the hot arrays, so
        retention bounds hot memory without losing history.
        """
        if not buf._size:
            return
        cutoff = self._latest_time - float(self.retention or 0.0)
        if buf._times[0] >= cutoff:
            return
        if not exact and self.retention_slack > 0.0:
            stale = int(np.searchsorted(buf.times, cutoff, side="left"))
            if stale < self.retention_slack * buf._size:
                return
        if self.archive is not None:
            lo = int(np.searchsorted(buf.times, cutoff, side="left"))
            if lo:
                self.archive.demote(
                    buf.name, buf._times[:lo], buf._values[:lo]
                )
        dropped = buf.trim_before(cutoff)
        if dropped:
            self.retention_trims += 1
            self.samples_trimmed += dropped

    def _sweep_one(self) -> None:
        """Watermark-check one extra series, round-robin.

        Gives cold series (no longer receiving data) an amortized O(1) path
        to reclamation without sweeping the whole store per append.
        """
        if not self._sweep_queue:
            self._sweep_queue = list(self._series)
        buf = self._series.get(self._sweep_queue.pop())
        if buf is not None:
            self._maybe_trim(buf, exact=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            if self._names_cache is None:
                self._names_cache = sorted(self._series)
            return list(self._names_cache)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __len__(self) -> int:
        return len(self._series)

    def series(self, name: str) -> SeriesBuffer:
        """Read accessor: flushes staged samples and enforces retention."""
        with self._lock:
            buf = self._series.get(name)
            if buf is None:
                raise UnknownMetricError(name)
            stage = self._staging.get(name)
            if stage is not None and stage.times:
                self._flush_stage(name, stage)
            if self.retention is not None:
                self._maybe_trim(buf, exact=True)
            return buf

    @property
    def latest_time(self) -> float:
        """Largest timestamp ingested so far (-inf when empty)."""
        return self._latest_time

    @property
    def staged_samples(self) -> int:
        """Samples currently parked in staging buffers (pre-flush)."""
        with self._lock:
            return sum(len(stage.times) for stage in self._staging.values())

    def version_stamp(self) -> Tuple[float, float, float, float]:
        """Cheap monotone fingerprint of store content.

        ``(samples_ingested, latest_time, series_count, samples_trimmed)``
        changes whenever any write lands, so two queries bracketed by equal
        stamps are guaranteed to see identical data — this is the per-shard
        ingest watermark the serving result cache keys its invalidation on.
        (Retention trims are a deterministic function of ``latest_time``
        and reads enforce the exact cutoff, so an unchanged stamp also
        pins what retention has visibly removed.)
        """
        with self._lock:
            return (
                float(self.samples_ingested),
                self._latest_time,
                float(len(self._series)),
                float(self.samples_trimmed),
            )

    # ------------------------------------------------------------------
    # Durability: journal control, crash recovery, anti-entropy splicing
    # ------------------------------------------------------------------
    @property
    def journal(self) -> Optional[WriteAheadJournal]:
        """The write-ahead journal (None when durability is disabled)."""
        return self._journal

    def sync_journal(self) -> int:
        """Force a journal group commit + fsync; returns the durable seq."""
        with self._lock:
            return self._journal.sync() if self._journal is not None else 0

    def flush_journal(self) -> int:
        """Hand buffered journal records to the OS (survives process kill)."""
        with self._lock:
            return self._journal.flush() if self._journal is not None else 0

    def journal_mark_durable(self, seq: Optional[int] = None) -> int:
        """Declare journaled data persisted elsewhere; prunes covered segments.

        Called by :func:`~repro.telemetry.persistence.save_store` after a
        successful atomic save so the journal never grows past one
        checkpoint interval.  Returns the number of segments pruned.
        """
        with self._lock:
            if self._journal is None:
                return 0
            if seq is None:
                seq = self._journal.sync()
            # Hand the live interning table along: pruning may delete the
            # segments holding the original NAMES records while batches
            # above the watermark still reference those ids.
            return self._journal.mark_durable(
                seq,
                names={
                    nid: names for names, nid in self._journal_names.items()
                },
            )

    def close(self) -> None:
        """Flush staging and cleanly close the journal (idempotent)."""
        with self._lock:
            self._flush()
            if self._journal is not None:
                self._journal.close()

    def _recover_journal(self, cfg: JournalConfig) -> RecoveryStats:
        """Replay an existing journal into this (empty) store.

        Tolerates damage: a torn tail truncates replay, a corrupt record
        drops the rest of its segment, and a record the store refuses
        (out-of-order after a partial tear) is counted, not raised.
        Consecutive wide-batch records against the same name tuple are
        coalesced into columnar block appends so replay stays vectorized.
        """
        stats = RecoveryStats()
        names_map: Dict[int, Tuple[str, ...]] = {}
        pend_id: Optional[int] = None
        pend_times: List[float] = []
        pend_rows: List[np.ndarray] = []

        def flush_pending() -> None:
            nonlocal pend_id
            if pend_id is None:
                return
            names, nid = names_map[pend_id], pend_id
            pend_id = None
            try:
                self.append_block(
                    names, np.asarray(pend_times), np.vstack(pend_rows)
                )
            except StoreError:
                stats.replay_conflicts += 1
            pend_times.clear()
            pend_rows.clear()

        self._replaying = True
        try:
            # NAMES pre-pass: batches appended between a save's journal
            # flush and its mark_durable sit above the watermark but
            # *before* the table re-interned at the mark, so a single
            # ordered pass could hit a batch whose NAMES record only
            # appears later.  Ids are never remapped, so seeding the full
            # table up front is safe.
            for rec in iter_records(cfg.dir, stats=RecoveryStats()):
                if rec[0] == "names":
                    names_map[rec[2]] = rec[3]
            for rec in iter_records(cfg.dir, stats=stats):
                kind = rec[0]
                if kind == "names":
                    names_map[rec[2]] = rec[3]
                elif kind == "batch":
                    names = names_map.get(rec[2])
                    if names is None or len(names) != rec[4].size:
                        stats.replay_conflicts += 1
                        continue
                    if pend_id != rec[2] or (
                        pend_times and rec[3] < pend_times[-1]
                    ):
                        flush_pending()
                    if pend_id is None:
                        pend_id = rec[2]
                    if pend_times and rec[3] == pend_times[-1]:
                        pend_rows[-1] = rec[4]  # last writer wins
                    else:
                        pend_times.append(rec[3])
                        pend_rows.append(rec[4])
                elif kind == "many":
                    flush_pending()
                    try:
                        self.append_many(rec[2], rec[3], rec[4])
                    except StoreError:
                        stats.replay_conflicts += 1
                elif kind == "block":
                    flush_pending()
                    names = names_map.get(rec[2])
                    if names is None or len(names) != rec[4].shape[1]:
                        stats.replay_conflicts += 1
                        continue
                    try:
                        self.append_block(names, rec[3], rec[4])
                    except StoreError:
                        stats.replay_conflicts += 1
                # "mark" records are runtime watermarks; stats.last_mark
                # captures them for the worker-restart path.
            flush_pending()
        finally:
            self._replaying = False
        # Seed the interning table from what the journal holds, so this
        # incarnation extends the journal's id numbering instead of
        # restarting at 0 and remapping ids already on disk.
        self._journal_names = {
            tuple(names): nid for nid, names in names_map.items()
        }
        return stats

    def window_checksums(
        self, name: str, window_s: float, until: Optional[float] = None
    ) -> Dict[int, Tuple[int, int]]:
        """Per-time-window fingerprints of the hot tier of ``name``.

        Anti-entropy compares these across replicas instead of shipping
        data.  Windows at or past ``until`` are excluded so the currently
        filling window is never flagged mid-ingest.  Unknown series map to
        the empty dict (a replica that missed a series' creation *should*
        diverge on every window the peer holds).
        """
        with self._lock:
            if name not in self._series:
                return {}
            buf = self.series(name)
            return _window_checksums(
                buf.times, buf.values, window_s, until=until
            )

    def window_data(
        self, name: str, window_s: float, window: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Copy of the hot samples of ``name`` inside one checksum window."""
        with self._lock:
            buf = self.series(name)
            t = buf.times
            lo = int(np.searchsorted(t, window * window_s, side="left"))
            hi = int(np.searchsorted(t, (window + 1) * window_s, side="left"))
            return t[lo:hi].copy(), buf.values[lo:hi].copy()

    def replace_window(
        self,
        name: str,
        since: float,
        until: float,
        times: np.ndarray,
        values: np.ndarray,
    ) -> int:
        """Splice-repair: replace the samples of ``name`` in ``[since, until)``.

        This is the anti-entropy write path — it may rewrite *past* data,
        which normal ingest forbids.  Replacement samples must be sorted and
        lie within the window.  Affected rollup buckets are recomputed from
        the repaired raw data.  Returns the net change in sample count.
        Repairs are not journaled: after a crash the divergence is simply
        re-detected and re-repaired by the next sweep.
        """
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.ndim != 1 or times.shape != values.shape:
            raise StoreError("replace_window needs matching 1-d times/values")
        if times.size and (
            np.any(np.diff(times) < 0)
            or times[0] < since
            or times[-1] >= until
        ):
            raise StoreError(
                f"replace_window: samples must be sorted within "
                f"[{since}, {until})"
            )
        with self._lock:
            self._last_time_of(name)  # ensure the series exists
            buf = self.series(name)
            t = buf.times
            lo = int(np.searchsorted(t, since, side="left"))
            hi = int(np.searchsorted(t, until, side="left"))
            new_t = np.concatenate((t[:lo], times, t[hi:]))
            new_v = np.concatenate((buf.values[:lo], values, buf.values[hi:]))
            buf._times = new_t
            buf._values = new_v
            buf._size = new_t.size
            added, removed = int(times.size), hi - lo
            self.repaired_samples += added
            # Repairs are writes: bump the ingest counter so version_stamp
            # moves and serving caches invalidate.
            self.samples_ingested += added
            if new_t.size and float(new_t[-1]) > self._latest_time:
                self._latest_time = float(new_t[-1])
            if self.rollups is not None:
                self.rollups.repair(name, since, until)
            return added - removed

    @property
    def rollup_config(self) -> Optional[RollupConfig]:
        """Active rollup cascade config (None when disabled)."""
        return self.rollups.config if self.rollups is not None else None

    @property
    def archive_config(self) -> Optional[ArchiveConfig]:
        """Active cold-tier config (None when disabled)."""
        return self.archive.config if self.archive is not None else None

    @property
    def metrics(self) -> MetricsRegistry:
        """Typed instruments over the store counters (lazily built)."""
        if self._metrics is None:
            r = MetricsRegistry()
            r.counter("telemetry.store.samples", "samples ingested",
                      fn=lambda: float(self.samples_ingested))
            r.gauge("telemetry.store.series", "distinct series held",
                    fn=lambda: float(len(self._series)))
            r.gauge("telemetry.store.staged", "samples parked in staging",
                    fn=lambda: float(self.staged_samples))
            r.counter("telemetry.store.flushes", "staging flushes",
                      fn=lambda: float(self.flushes))
            r.counter("telemetry.store.retention_trims", "retention compactions",
                      fn=lambda: float(self.retention_trims))
            r.counter("telemetry.store.samples_trimmed",
                      "samples dropped by retention",
                      fn=lambda: float(self.samples_trimmed))
            if self.rollups is not None:
                ru = self.rollups
                r.gauge("telemetry.rollup.series_tracked",
                        "series with rollup cascades",
                        fn=lambda: float(ru.series_tracked))
                r.counter("telemetry.rollup.buckets_finalized",
                          "tier buckets finalized",
                          fn=lambda: float(ru.buckets_finalized))
                r.counter("telemetry.rollup.buckets_served",
                          "query buckets answered from tiers",
                          fn=lambda: float(ru.buckets_served))
                r.counter("telemetry.rollup.tier_hits",
                          "queries fully tier-served (bar the final bucket)",
                          fn=lambda: float(ru.tier_hits))
                r.counter("telemetry.rollup.partial_hits",
                          "queries spliced from tier prefix + raw tail",
                          fn=lambda: float(ru.partial_hits))
                r.counter("telemetry.rollup.raw_fallbacks",
                          "planner consultations that fell back to raw",
                          fn=lambda: float(ru.raw_fallbacks))
                r.counter("telemetry.rollup.buckets_repaired",
                          "tier buckets rebuilt after anti-entropy repair",
                          fn=lambda: float(ru.buckets_repaired))
            if self.archive is not None:
                ar = self.archive
                r.gauge("telemetry.archive.chunks", "cold chunks held",
                        fn=lambda: float(ar.chunk_count()))
                r.gauge("telemetry.archive.samples", "samples in cold tier",
                        fn=lambda: float(ar.samples()))
                r.gauge("telemetry.archive.encoded_bytes",
                        "compressed cold payload bytes",
                        fn=lambda: float(ar.encoded_bytes))
                r.gauge("telemetry.archive.raw_bytes",
                        "hot-equivalent bytes of cold samples",
                        fn=lambda: float(ar.raw_bytes))
                r.counter("telemetry.archive.demotions",
                          "retention sweeps that demoted to cold",
                          fn=lambda: float(ar.demotions))
                r.counter("telemetry.archive.demoted_samples",
                          "samples demoted to cold",
                          fn=lambda: float(ar.demoted_samples))
                r.counter("telemetry.archive.cold_scans",
                          "reads that decoded cold chunks",
                          fn=lambda: float(ar.cold_scans))
                r.counter("telemetry.archive.scanned_samples",
                          "samples decoded from cold chunks",
                          fn=lambda: float(ar.scanned_samples))
                r.counter("telemetry.archive.compactions",
                          "cold chunk merge passes",
                          fn=lambda: float(ar.compactions))
                r.counter("telemetry.archive.missing_chunks",
                          "cold chunks missing at load (degraded to raw)",
                          fn=lambda: float(ar.missing_chunks))
            r.counter("telemetry.durability.corrupt_artifacts",
                      "damaged persisted artifacts degraded at load",
                      fn=lambda: float(self.corrupt_artifacts))
            r.counter("telemetry.durability.repaired_samples",
                      "samples spliced in by anti-entropy repair",
                      fn=lambda: float(self.repaired_samples))
            if self._journal is not None:
                j = self._journal
                r.counter("telemetry.durability.journal_records",
                          "records appended to the write-ahead journal",
                          fn=lambda: float(j.records))
                r.counter("telemetry.durability.journal_bytes",
                          "journal bytes handed to the OS",
                          fn=lambda: float(j.bytes_written))
                r.counter("telemetry.durability.journal_syncs",
                          "journal fsync group commits",
                          fn=lambda: float(j.syncs))
                r.counter("telemetry.durability.journal_rotations",
                          "journal segment rotations",
                          fn=lambda: float(j.rotations))
            if self.recovery is not None:
                rec = self.recovery
                r.counter("telemetry.durability.recovered_records",
                          "journal records replayed at open",
                          fn=lambda: float(rec.replayed_records))
                r.counter("telemetry.durability.recovered_samples",
                          "samples recovered from the journal at open",
                          fn=lambda: float(rec.replayed_samples))
                r.counter("telemetry.durability.torn_tail_drops",
                          "journal tails torn by a crash mid-write",
                          fn=lambda: float(rec.torn_tail_drops))
                r.counter("telemetry.durability.corrupt_journal_records",
                          "journal frames failing CRC at recovery",
                          fn=lambda: float(rec.corrupt_records))
            self._metrics = r
        return self._metrics

    def health_metrics(self) -> Dict[str, float]:
        """Self-metrics snapshot — a thin dict view over :attr:`metrics`."""
        return self.metrics.snapshot()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _rollup_fetch(
        self, name: str, since: float, until: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Maintenance fetch for the rollup engine: cold + hot, with
        retention deliberately NOT enforced.

        Finalization runs in the mutation epilogue, *before* the retention
        sweep; reading pre-trim here is what lets finalized buckets keep
        history that the hot tier is about to drop (long-horizon memory
        when no archive tier is attached).  The planner's raw tails use
        :meth:`_tiered_range` instead, which has query semantics.
        """
        with self._lock:
            buf = self._series.get(name)
            if buf is None:
                if self.archive is not None and name in self.archive:
                    return self.archive.scan(name, since, until)
                raise UnknownMetricError(name)
            stage = self._staging.get(name)
            if stage is not None and stage.times:
                self._flush_stage(name, stage)
            ht, hv = buf.range(since, until)
            if self.archive is not None and name in self.archive:
                ct, cv = self.archive.scan(name, since, until)
                if ct.size:
                    if not ht.size:
                        return ct, cv
                    return np.concatenate((ct, ht)), np.concatenate((cv, hv))
            return ht, hv

    def _tiered_range(
        self, name: str, since: float, until: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Cold-aware range read: archive chunks + hot arrays, in order.

        Cold samples are strictly older than everything hot (demotion
        moves a time-prefix), so the concatenation stays sorted.
        """
        with self._lock:
            buf = self._series.get(name)
            if buf is None:
                if self.archive is not None and name in self.archive:
                    return self.archive.scan(name, since, until)
                raise UnknownMetricError(name)
            stage = self._staging.get(name)
            if stage is not None and stage.times:
                self._flush_stage(name, stage)
            if self.retention is not None:
                self._maybe_trim(buf, exact=True)
            ht, hv = buf.range(since, until)
            if self.archive is not None and name in self.archive:
                ct, cv = self.archive.scan(name, since, until)
                if ct.size:
                    if not ht.size:
                        return ct, cv
                    return np.concatenate((ct, ht)), np.concatenate((cv, hv))
            return ht, hv

    def query(
        self, name: str, since: float = float("-inf"), until: float = float("inf")
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Range query; returns (times, values) arrays.

        Without an archive tier these are zero-copy views over the hot
        arrays; when the range reaches demoted history, overlapping cold
        chunks are decoded and spliced in front (fresh arrays).
        """
        return self._tiered_range(name, since, until)

    def latest(self, name: str) -> Tuple[float, float]:
        """Most recent (time, value) for ``name``."""
        with self._lock:
            buf = self.series(name)
            if not buf._size and self.archive is not None and name in self.archive:
                t_last = self.archive.last_time(name)
                value = self.archive.value_at(name, t_last)
                if value is not None:
                    return t_last, value
            return buf.latest()

    def value_at(self, name: str, time: float) -> float:
        """Last-observation-carried-forward lookup (cold-tier aware)."""
        with self._lock:
            try:
                return self.series(name).value_at(time)
            except StoreError:
                if self.archive is not None:
                    value = self.archive.value_at(name, time)
                    if value is not None:
                        return value
                raise

    # Shared kernels, kept as method aliases for backwards compatibility.
    _bucket_edges = staticmethod(bucket_edges)
    _check_resample_args = staticmethod(check_resample_args)

    def _resample_onto(
        self,
        times: np.ndarray,
        values: np.ndarray,
        edges: np.ndarray,
        agg: str,
        engine: str,
    ) -> np.ndarray:
        """Aggregate in-range samples onto the buckets defined by ``edges``."""
        return resample_onto(times, values, edges, agg, engine)

    def resample_column(
        self,
        name: str,
        since: float,
        until: float,
        step: float,
        agg: str,
        engine: str,
        edges: np.ndarray,
    ) -> np.ndarray:
        """One per-bucket value column on a precomputed edge grid.

        This is the planner-aware primitive ``resample``/``align`` and the
        federated query engine share: eligible buckets are served from the
        coarsest rollup tier, the rest reduce raw (cold-aware) samples with
        the shared kernels — so every caller gets identical bits.
        """
        with self._lock:
            if self.rollups is not None:
                served = self.rollups.serve(
                    name, since, until, step, agg, engine, edges
                )
                if served is not None:
                    return served
            times, values = self.query(name, since, until)
            return resample_onto(times, values, edges, agg, engine)

    def resample(
        self,
        name: str,
        since: float,
        until: float,
        step: float,
        agg: str = "mean",
        engine: str = "auto",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Downsample a series onto buckets of width ``step``.

        Buckets are left-closed ``[t, t+step)``; each output timestamp is the
        bucket start.  When ``until - since`` is not an exact multiple of
        ``step``, the final bucket is partial and covers ``[t, until]``
        (closed, so a sample exactly at ``until`` is included rather than
        silently dropped).  Empty buckets yield ``NaN`` so gaps stay visible
        to descriptive analytics rather than being silently interpolated.

        ``engine`` selects the bucketing implementation: ``"auto"`` uses the
        vectorized ``reduceat`` kernel when one exists for ``agg`` and falls
        back to the scalar per-bucket loop otherwise (``std/median/p95/rate``),
        ``"scalar"`` forces the reference loop, ``"vectorized"`` raises if no
        kernel exists.
        """
        if _OBS.enabled:
            with _OBS.tracer.span("store.resample", metric=name, agg=agg):
                return self._resample_impl(name, since, until, step, agg, engine)
        return self._resample_impl(name, since, until, step, agg, engine)

    def _resample_impl(
        self,
        name: str,
        since: float,
        until: float,
        step: float,
        agg: str,
        engine: str,
    ) -> Tuple[np.ndarray, np.ndarray]:
        self._check_resample_args(step, agg, engine)
        if until <= since:
            return np.empty(0), np.empty(0)
        with self._lock:
            edges = self._bucket_edges(since, until, step)
            return edges[:-1], self.resample_column(
                name, since, until, step, agg, engine, edges
            )

    def align(
        self,
        names: Sequence[str],
        since: float,
        until: float,
        step: float,
        agg: str = "mean",
        fill: str = "ffill",
        engine: str = "auto",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Align several series onto a common grid.

        Returns ``(grid, matrix)`` where ``matrix[i, j]`` is series ``j`` at
        grid point ``i``.  ``fill`` controls gap handling: ``"ffill"``
        carries the last observation forward, ``"nan"`` leaves gaps.

        The bucket-edge grid is computed once and shared by every series, so
        an N-series alignment costs one grid build plus N kernel passes.

        This produces exactly the dense design matrix multivariate analytics
        (PCA, anomaly detectors, regressors) consume.
        """
        if _OBS.enabled:
            with _OBS.tracer.span("store.align", series=len(names), agg=agg):
                return self._align_impl(names, since, until, step, agg, fill, engine)
        return self._align_impl(names, since, until, step, agg, fill, engine)

    def _align_impl(
        self,
        names: Sequence[str],
        since: float,
        until: float,
        step: float,
        agg: str,
        fill: str,
        engine: str,
    ) -> Tuple[np.ndarray, np.ndarray]:
        if fill not in ("ffill", "nan"):
            raise StoreError(f"unknown fill mode {fill!r}")
        self._check_resample_args(step, agg, engine)
        if until <= since or not names:
            return np.empty(0), np.empty((0, len(names)))
        with self._lock:
            edges = self._bucket_edges(since, until, step)
            grid = edges[:-1]
            columns = []
            for name in names:
                v = self.resample_column(
                    name, since, until, step, agg, engine, edges
                )
                if fill == "ffill":
                    v = forward_fill(v)
                columns.append(v)
            return grid, np.column_stack(columns)

    def select(self, pattern: str) -> List[str]:
        """Names of stored series matching a shell-style pattern."""
        with self._lock:
            matcher = self._select_cache.get(pattern)
            if matcher is None:
                if len(self._select_cache) >= _SELECT_CACHE_CAP:
                    self._select_cache.clear()
                matcher = self._select_cache[pattern] = re.compile(
                    fnmatch.translate(pattern)
                ).match
            return [n for n in self.names() if matcher(n)]
