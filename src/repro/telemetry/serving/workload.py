"""Seeded heavy-tailed multi-tenant query workloads.

Real serving traffic is never uniform: a few tenants dominate the offered
load (Zipf-weighted tenant selection), a few canonical dashboard queries
repeat constantly (a "hot pool" drawn with Zipf rank weights — this is
what a result cache exists for), and window lengths are heavy-tailed
(Pareto — most queries look at the recent past, a few scan months).  This
module generates such workloads deterministically from a seed, plus a
threaded :func:`replay` helper the CLI and benchmark share.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ServingError
from repro.telemetry.serving.admission import TenantConfig
from repro.telemetry.serving.query import (
    AlignQuery,
    NamesQuery,
    Query,
    RangeQuery,
    ResampleQuery,
    SelectQuery,
    ServeOutcome,
)

__all__ = [
    "WorkloadSpec",
    "tenant_configs",
    "heavy_tailed_workload",
    "replay",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a generated workload (all knobs seeded/deterministic)."""

    tenants: int = 6
    queries: int = 500
    seed: int = 0
    #: fraction of queries drawn from the repeating hot pool
    hot_fraction: float = 0.6
    #: number of distinct canonical queries in the hot pool
    hot_pool: int = 16
    #: Zipf exponent for tenant selection (higher = more skewed)
    tenant_skew: float = 1.2
    #: Pareto shape for window lengths (lower = heavier tail)
    window_shape: float = 1.3
    #: widest align fan-out (series per align query)
    max_align_series: int = 32


def _zipf_weights(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-s)
    return w / w.sum()


def tenant_names(n: int) -> List[str]:
    return [f"tenant{i}" for i in range(n)]


def tenant_configs(
    n: int,
    base_rate: float = 200.0,
    burst: float = 32.0,
    max_concurrency: int = 4,
    max_queue: int = 32,
) -> Dict[str, TenantConfig]:
    """Admission envelopes for ``n`` tenants.

    Every tenant gets the same envelope — the heavy tail is in the *offered*
    load, so under pressure the dominant tenants are exactly the ones that
    hit their limits while light tenants keep sailing through.
    """
    return {
        name: TenantConfig(
            rate=base_rate,
            burst=burst,
            max_concurrency=max_concurrency,
            max_queue=max_queue,
        )
        for name in tenant_names(n)
    }


def _make_query(
    rng: np.random.Generator,
    names: Sequence[str],
    since: float,
    until: float,
    spec: WorkloadSpec,
) -> Query:
    span = until - since
    if span <= 0:
        raise ServingError(f"workload window is empty: [{since}, {until}]")
    kind = rng.choice(
        ("align", "resample", "range", "select", "names"),
        p=(0.50, 0.25, 0.15, 0.07, 0.03),
    )
    if kind == "names":
        return NamesQuery()
    if kind == "select":
        stem = str(names[int(rng.integers(len(names)))])
        prefix = stem.rsplit(".", 2)[0]
        return SelectQuery(pattern=f"{prefix}.*")
    # Heavy-tailed window length: most queries recent and narrow, a few
    # scan (almost) the whole horizon.
    frac = min(1.0, 0.02 * (1.0 + rng.pareto(spec.window_shape)))
    length = max(span * 0.005, span * frac)
    # Bias window ends toward "now" (dashboards watch the live edge).
    end = until - (span - length) * float(rng.random()) ** 2
    start = end - length
    if kind == "range":
        name = str(names[int(rng.integers(len(names)))])
        return RangeQuery(name=name, since=start, until=end)
    buckets = int(rng.choice((50, 100, 200, 400)))
    step = max(1.0, length / buckets)
    agg = str(rng.choice(("mean", "max", "min"), p=(0.6, 0.25, 0.15)))
    if kind == "resample":
        name = str(names[int(rng.integers(len(names)))])
        return ResampleQuery(
            name=name, since=start, until=end, step=step, agg=agg
        )
    k = min(
        len(names),
        spec.max_align_series,
        1 + int(rng.pareto(1.1) * 4.0),
    )
    lo = int(rng.integers(max(1, len(names) - k + 1)))
    return AlignQuery(
        names=tuple(names[lo:lo + k]),
        since=start, until=end, step=step, agg=agg,
    )


def heavy_tailed_workload(
    names: Sequence[str],
    since: float,
    until: float,
    spec: Optional[WorkloadSpec] = None,
) -> List[Tuple[str, Query]]:
    """Deterministic ``[(tenant, query), ...]`` from ``spec.seed``.

    ``hot_fraction`` of events re-issue one of ``hot_pool`` canonical
    queries (rank-weighted, so a handful dominate — these are the cache's
    bread and butter); the rest are freshly drawn, mostly-unique queries.
    """
    spec = spec or WorkloadSpec()
    if not names:
        raise ServingError("workload needs at least one series name")
    rng = np.random.default_rng(spec.seed)
    tenants = tenant_names(spec.tenants)
    tenant_w = _zipf_weights(spec.tenants, spec.tenant_skew)
    pool = [
        _make_query(rng, names, since, until, spec)
        for _ in range(spec.hot_pool)
    ]
    pool_w = _zipf_weights(len(pool), 1.1)
    events: List[Tuple[str, Query]] = []
    for _ in range(spec.queries):
        tenant = tenants[int(rng.choice(spec.tenants, p=tenant_w))]
        if rng.random() < spec.hot_fraction:
            query = pool[int(rng.choice(len(pool), p=pool_w))]
        else:
            query = _make_query(rng, names, since, until, spec)
        events.append((tenant, query))
    return events


def replay(
    frontend,
    events: Sequence[Tuple[str, Query]],
    submitters: int = 4,
    timeout: float = 60.0,
) -> List[ServeOutcome]:
    """Replay ``events`` through ``frontend`` from ``submitters`` threads.

    Events are dealt round-robin to the submitter threads (preserving each
    thread's relative order) — the closest thing to N independent clients
    hammering one front door.  Returns outcomes in the original event
    order.
    """
    if submitters < 1:
        raise ServingError(f"submitters must be >= 1, got {submitters}")
    outcomes: List[Optional[ServeOutcome]] = [None] * len(events)

    def run(worker: int) -> None:
        for i in range(worker, len(events), submitters):
            tenant, query = events[i]
            outcomes[i] = frontend.serve(tenant, query, timeout=timeout)

    if submitters == 1 or frontend.max_workers == 0:
        # Inline frontends execute on the calling thread; multiple
        # submitters would add nothing but nondeterminism.
        run_all = [
            frontend.serve(tenant, query, timeout=timeout)
            for tenant, query in events
        ]
        return run_all
    threads = [
        threading.Thread(target=run, args=(w,), name=f"repro-submit-{w}")
        for w in range(submitters)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return outcomes  # type: ignore[return-value]
