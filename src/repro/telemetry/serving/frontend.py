"""The multi-tenant query-serving front door.

:class:`QueryFrontend` is the piece that faces traffic: callers (tenants)
submit typed queries (:mod:`.query`) and the frontend

1. **plans** each query — routing it through the
   :class:`~repro.telemetry.distributed.federation.FederatedQueryEngine`
   for a sharded store (whose ``align`` already consults the rollup-tier
   planner on each owning shard) or straight at a single
   :class:`~repro.telemetry.store.TimeSeriesStore`;
2. **admits** it — per-tenant token buckets, bounded per-tenant/global
   queues, fair round-robin dispatch to a bounded worker pool
   (:mod:`.admission`); over-limit work gets a typed
   :class:`~repro.telemetry.serving.query.RejectedQuery`, never an
   exception;
3. **caches** results keyed on (query, tenant-visibility scope) and
   validated against per-shard ingest watermarks (:mod:`.cache`) — a hit
   is bit-identical to an uncached execution by construction;
4. **measures** everything through a :mod:`repro.obs` registry: per-tenant
   p50/p95/p99 latency histograms, cache hit/miss counters, queue-depth
   and shed gauges, all exposed in Prometheus text.

Failure containment: execution failures that indicate an unhealthy backend
(dead shards, unexpected exceptions) feed a
:class:`~repro.oda.supervision.CircuitBreaker`; an open breaker flips the
frontend into **shed-first mode** where every submission is rejected with
``BREAKER_OPEN`` until a half-open probe succeeds.  The supervisor's
watchdog additionally records sustained queue saturation as breaker
failures (see :meth:`QueryFrontend.watchdog_check`), so a saturated
frontend degrades to shedding instead of queueing unboundedly.
"""

from __future__ import annotations

import fnmatch
import re
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import (
    ReproError,
    ServingError,
    ShardDownError,
    UnknownMetricError,
)
from repro.obs.metrics import MetricsRegistry
from repro.telemetry.serving.admission import (
    AdmissionController,
    TenantConfig,
    TenantState,
)
from repro.telemetry.serving.cache import ResultCache, freeze_payload
from repro.telemetry.serving.query import (
    AlignQuery,
    Query,
    QueryResult,
    RejectReason,
    RejectedQuery,
    ServeOutcome,
)

__all__ = ["PendingQuery", "QueryFrontend"]


def _breaker_module():
    # Deferred: repro.oda.supervision transitively imports half the
    # platform (analytics, cluster, software), and the cluster package
    # imports repro.telemetry right back — a module-level import here
    # would be a cycle.  First use is always post-initialization.
    from repro.oda import supervision

    return supervision

#: Latency buckets for serving histograms: 50 µs .. 30 s.
LATENCY_BUCKETS: Tuple[float, ...] = (
    5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class PendingQuery:
    """Handle for one submitted query; resolves to a :data:`ServeOutcome`."""

    __slots__ = ("tenant", "query", "submitted_at", "_event", "_outcome")

    def __init__(self, tenant: str, query: Query, submitted_at: float):
        self.tenant = tenant
        self.query = query
        self.submitted_at = submitted_at
        self._event = threading.Event()
        self._outcome: Optional[ServeOutcome] = None

    def _resolve(self, outcome: ServeOutcome) -> None:
        self._outcome = outcome
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> ServeOutcome:
        if not self._event.wait(timeout):
            raise ServingError(
                f"query for tenant {self.tenant!r} not resolved "
                f"within {timeout}s"
            )
        return self._outcome  # type: ignore[return-value]


class QueryFrontend:
    """Multi-tenant serving front door over a (sharded) telemetry store.

    Parameters
    ----------
    store:
        A :class:`~repro.telemetry.store.TimeSeriesStore` or
        :class:`~repro.telemetry.distributed.shard.ShardedStore` (any
        replication / ``parallel`` tier).
    tenants:
        Optional ``{name: TenantConfig}`` installed up front; unknown
        tenants are auto-created under ``default_config`` on first query.
    max_workers:
        Size of the worker pool — the *global* concurrency bound.  ``0``
        runs no threads: callers drive execution via :meth:`serve` /
        :meth:`pump` inline (deterministic; used by tests and benchmarks
        measuring pure execution cost).
    admission:
        ``False`` disables rate limits and queue bounds (every query is
        admitted and queued unboundedly) — the "no admission control"
        baseline the serving benchmark compares tail latencies against.
    cache:
        ``False`` disables the result cache entirely.
    shed_watermark:
        Fraction of ``global_queue`` occupancy at which new submissions are
        shed outright (and the supervisor watchdog starts counting
        saturation toward the breaker).
    clock:
        Injectable monotonic clock (seconds); defaults to
        :func:`time.perf_counter`.  Drives token buckets, latency
        measurement and the breaker — the frontend runs on wall time, not
        simulation time.
    """

    def __init__(
        self,
        store,
        tenants: Optional[Dict[str, TenantConfig]] = None,
        default_config: Optional[TenantConfig] = None,
        max_workers: int = 4,
        global_queue: int = 256,
        admission: bool = True,
        cache: bool = True,
        cache_capacity: int = 512,
        shed_watermark: float = 0.9,
        breaker: Optional[CircuitBreaker] = None,
        clock: Optional[Callable[[], float]] = None,
        name: str = "frontend",
    ):
        if max_workers < 0:
            raise ServingError(f"max_workers must be >= 0, got {max_workers}")
        if not 0.0 < shed_watermark <= 1.0:
            raise ServingError(
                f"shed_watermark must be in (0, 1], got {shed_watermark}"
            )
        self.name = name
        self._store = store
        # Planner: a sharded store serves cross-shard queries through its
        # federation engine (which consults each shard's rollup planner);
        # a plain store is its own engine — identical query surface.
        self._sharded = store if hasattr(store, "federation") else None
        self._engine = store.federation if self._sharded is not None else store
        self._clock = clock or time.perf_counter
        self._admission = AdmissionController(
            default_config=default_config,
            global_queue=global_queue,
            enabled=admission,
        )
        self.shed_watermark = shed_watermark
        self._cache: Optional[ResultCache] = (
            ResultCache(cache_capacity) if cache else None
        )
        self.breaker = breaker or _breaker_module().CircuitBreaker(
            failure_threshold=5, open_timeout_s=1.0, max_open_timeout_s=60.0
        )
        self._reported_transitions = 0
        self._matchers: Dict[Tuple[str, ...], List[Callable]] = {}
        # One lock guards admission state, the dispatch queue and the
        # breaker; execution itself runs outside it.
        self._mu = threading.Lock()
        self._work = threading.Condition(self._mu)
        self._closed = False
        # Counters (all mutated under the lock except cache internals).
        self.queries_offered = 0
        self.queries_admitted = 0
        self.queries_completed = 0
        self.query_errors = 0
        self.saturation_sheds = 0
        self.rejections: Dict[RejectReason, int] = {r: 0 for r in RejectReason}
        self._metrics: Optional[MetricsRegistry] = None
        self._registry_lock = threading.Lock()
        self.max_workers = max_workers
        self._threads: List[threading.Thread] = []
        if tenants:
            now = self._clock()
            for tenant_name, config in tenants.items():
                self._admission.configure(tenant_name, config, now)
                self._tenant_histogram(tenant_name)
        for i in range(max_workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{name}-{i}",
                daemon=True,
            )
            t.start()
            self._threads.append(t)

    # ------------------------------------------------------------------
    # Tenant management
    # ------------------------------------------------------------------
    def configure_tenant(self, tenant: str, config: TenantConfig) -> None:
        with self._mu:
            self._admission.configure(tenant, config, self._clock())
        self._tenant_histogram(tenant)

    def tenant_stats(self) -> Dict[str, Dict[str, float]]:
        with self._mu:
            return self._admission.stats()

    def _matchers_for(self, config: TenantConfig) -> Optional[List[Callable]]:
        if config.visibility is None:
            return None
        matchers = self._matchers.get(config.visibility)
        if matchers is None:
            matchers = self._matchers[config.visibility] = [
                re.compile(fnmatch.translate(p)).match
                for p in config.visibility
            ]
        return matchers

    # ------------------------------------------------------------------
    # Submission / admission
    # ------------------------------------------------------------------
    def submit(self, tenant: str, query: Query) -> PendingQuery:
        """Admit-or-reject ``query``; never raises for per-query outcomes.

        The returned handle resolves immediately for rejections and once a
        worker finishes otherwise (with ``max_workers=0``, drive execution
        via :meth:`pump` or use :meth:`serve`).
        """
        now = self._clock()
        pending = PendingQuery(tenant, query, now)
        with self._work:
            state = self._admission.tenant(tenant, now)
            state.offered += 1
            self.queries_offered += 1
            rejection = self._admit_locked(state, query, now)
            if rejection is not None:
                reason, retry_after, message = rejection
                state.rejected[reason] += 1
                self.rejections[reason] += 1
                pending._resolve(RejectedQuery(
                    tenant, query, reason, retry_after, message
                ))
                return pending
            state.admitted += 1
            self.queries_admitted += 1
            self._admission.push(state, (state, pending))
            self._work.notify()
        self._tenant_histogram(tenant)
        return pending

    def _admit_locked(self, state: TenantState, query: Query, now: float):
        if self._closed:
            return (RejectReason.CLOSED, None, "frontend is closed")
        if not self.breaker.allow(now):
            return (
                RejectReason.BREAKER_OPEN, None,
                "frontend breaker is open (shed-first mode)",
            )
        if (
            self._admission.enabled
            and self._admission.queued
            >= self.shed_watermark * self._admission.global_queue
        ):
            self.saturation_sheds += 1
            return (
                RejectReason.SHED, None,
                f"queue at {self._admission.queued}/"
                f"{self._admission.global_queue} (watermark "
                f"{self.shed_watermark:.0%})",
            )
        verdict = self._admission.try_admit(state, now)
        if verdict is not None:
            reason, retry_after = verdict
            return (reason, retry_after, f"admission: {reason.value}")
        return None

    def serve(
        self, tenant: str, query: Query, timeout: Optional[float] = None
    ) -> ServeOutcome:
        """Submit and wait; with no worker pool, executes inline."""
        pending = self.submit(tenant, query)
        if self.max_workers == 0 and not pending.done():
            self.pump()
        return pending.result(timeout)

    def pump(self, max_tasks: Optional[int] = None) -> int:
        """Inline dispatcher for ``max_workers=0``: run queued tasks on the
        calling thread (in fair order) until the queue drains.  Returns the
        number of tasks executed."""
        executed = 0
        while max_tasks is None or executed < max_tasks:
            with self._mu:
                task = self._admission.pop()
            if task is None:
                break
            self._run_task(task)
            executed += 1
        return executed

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._work:
                task = self._admission.pop()
                while task is None:
                    if self._closed:
                        return
                    self._work.wait(0.1)
                    task = self._admission.pop()
            self._run_task(task)

    def _run_task(self, task) -> None:
        state, pending = task
        outcome = self._execute(state, pending)
        with self._work:
            self._admission.task_done(state)
            state.completed += 1
            self.queries_completed += 1
            if not outcome.ok:
                state.errors += 1
                self.query_errors += 1
            # A freed concurrency slot may unblock another tenant's task.
            self._work.notify()
        latency = self._clock() - pending.submitted_at
        outcome.latency_s = latency
        self._observe_latency(state.name, latency)
        pending._resolve(outcome)

    # ------------------------------------------------------------------
    # Planning + execution
    # ------------------------------------------------------------------
    def _execute(self, state: TenantState, pending: PendingQuery) -> QueryResult:
        tenant, query = state.name, pending.query
        config = state.config
        matchers = self._matchers_for(config)
        cacheable = self._cache is not None
        key = (query, config.visibility) if cacheable else None
        now = self._clock()
        try:
            if cacheable:
                shards = self._owning_shards(query)
                pre = self._versions(shards)
                hit = self._cache.get(key, pre)
                if hit is not None:
                    self.breaker.record_success(now)
                    return QueryResult(
                        tenant, query, ok=True, payload=hit, cache_hit=True
                    )
            payload = self._run(query, matchers)
            if cacheable:
                payload = freeze_payload(payload)
                # Only cache when no ingest raced the execution — otherwise
                # the payload may mix pre- and post-write state and would
                # not be bit-identical to a fresh execution at `post`.
                post = self._versions(shards)
                if post == pre:
                    self._cache.put(key, pre, payload)
            self.breaker.record_success(self._clock())
            return QueryResult(tenant, query, ok=True, payload=payload)
        except UnknownMetricError as exc:
            # Domain error (includes invisible-to-tenant): caller's problem,
            # not a backend health signal.
            return QueryResult(tenant, query, ok=False, error=str(exc))
        except ShardDownError as exc:
            self.breaker.record_failure(self._clock(), "shard down")
            return QueryResult(tenant, query, ok=False, error=str(exc))
        except ReproError as exc:
            # Bad arguments, store-level validation: domain error.
            return QueryResult(tenant, query, ok=False, error=str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self.breaker.record_failure(self._clock(), type(exc).__name__)
            return QueryResult(
                tenant, query, ok=False,
                error=f"{type(exc).__name__}: {exc}",
            )

    def _run(self, query: Query, matchers: Optional[List[Callable]]):
        eng = self._engine
        kind = query.kind
        if kind == "names":
            return tuple(self._filter_names(eng.names(), matchers))
        if kind == "select":
            return tuple(self._filter_names(eng.select(query.pattern), matchers))
        if kind == "range":
            self._check_visible(query.name, matchers)
            times, values = eng.query(query.name, query.since, query.until)
            return (times, values)
        if kind == "resample":
            self._check_visible(query.name, matchers)
            return eng.resample(
                query.name, query.since, query.until, query.step,
                agg=query.agg, engine=query.engine,
            )
        if kind == "align":
            names = self._resolve_align_names(query, matchers)
            grid, matrix = eng.align(
                names, query.since, query.until, query.step,
                agg=query.agg, fill=query.fill, engine=query.engine,
            )
            return (grid, matrix, names)
        raise ServingError(f"unknown query kind {kind!r}")

    def _resolve_align_names(
        self, query: AlignQuery, matchers: Optional[List[Callable]]
    ) -> Tuple[str, ...]:
        if query.pattern is not None:
            return tuple(
                self._filter_names(self._engine.select(query.pattern), matchers)
            )
        for name in query.names:
            self._check_visible(name, matchers)
        return query.names

    @staticmethod
    def _filter_names(
        names: List[str], matchers: Optional[List[Callable]]
    ) -> List[str]:
        if matchers is None:
            return names
        return [n for n in names if any(m(n) for m in matchers)]

    @staticmethod
    def _check_visible(name: str, matchers: Optional[List[Callable]]) -> None:
        # An invisible series is indistinguishable from an absent one —
        # tenants cannot probe for other tenants' series names.
        if matchers is not None and not any(m(name) for m in matchers):
            raise UnknownMetricError(name)

    # ------------------------------------------------------------------
    # Watermarks
    # ------------------------------------------------------------------
    def _owning_shards(self, query: Query) -> Tuple[int, ...]:
        """Shards whose content the query can read (cache-stamp scope)."""
        if self._sharded is None:
            return (0,)
        if query.kind in ("range", "resample"):
            return (self._sharded.shard_of(query.name),)
        if query.kind == "align" and query.pattern is None and query.names:
            return tuple(sorted(
                {self._sharded.shard_of(n) for n in query.names}
            ))
        # Catalog queries and pattern-aligns fan out everywhere.
        return tuple(range(self._sharded.shards))

    def _versions(self, shards: Tuple[int, ...]) -> Tuple:
        """Current ``(shard, member, *stamp)`` tuple per involved shard.

        The serving member index is part of the stamp, so a failover to a
        replica — even one holding identical data — invalidates cached
        entries (the replica may legitimately have missed writes).
        """
        if self._sharded is None:
            return ((0, 0) + self._store.version_stamp(),)
        out = []
        for shard in shards:
            rs = self._sharded.replica_sets[shard]
            store = rs.read_store()
            member = getattr(store, "member", None)
            if member is None:
                member = rs.members.index(store)
            out.append((shard, int(member)) + tuple(store.version_stamp()))
        return tuple(out)

    # ------------------------------------------------------------------
    # Supervision surface
    # ------------------------------------------------------------------
    @property
    def shedding(self) -> bool:
        """True when the breaker has the frontend in shed-first mode."""
        return self.breaker.state is not _breaker_module().BreakerState.CLOSED

    def watchdog_check(self) -> List[Tuple[str, dict]]:
        """Called by the supervisor's watchdog tick.

        Records sustained queue saturation as a breaker failure (a
        saturated frontend should degrade to shedding, not queue without
        bound) and returns new events — saturation episodes and breaker
        transitions since the last check — for the site trace.
        """
        events: List[Tuple[str, dict]] = []
        with self._mu:
            depth = self._admission.queued
            capacity = self._admission.global_queue
            if (
                self._admission.enabled
                and depth >= self.shed_watermark * capacity
            ):
                opened = self.breaker.record_failure(
                    self._clock(), "saturated"
                )
                events.append((
                    "saturated",
                    {"depth": depth, "capacity": capacity, "opened": opened},
                ))
            transitions = getattr(self.breaker, "transitions", [])
            for tr in transitions[self._reported_transitions:]:
                events.append((
                    "breaker_transition",
                    {
                        "from": tr.from_state.value,
                        "to": tr.to_state.value,
                        "reason": tr.reason,
                    },
                ))
            self._reported_transitions = len(transitions)
        return events

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _tenant_histogram(self, tenant: str):
        registry = self.metrics
        # get-or-create mutates the registry dict; serialize it so two
        # submitter threads cannot race one tenant's first query.
        with self._registry_lock:
            return registry.histogram(
                f"telemetry.serving.tenant.{tenant}.latency",
                buckets=LATENCY_BUCKETS,
                description=f"query latency for tenant {tenant}",
                threadsafe=True,
            )

    def _observe_latency(self, tenant: str, latency: float) -> None:
        self.metrics.get("telemetry.serving.latency").observe(latency)
        self._tenant_histogram(tenant).observe(latency)

    @property
    def metrics(self) -> MetricsRegistry:
        """Typed instruments on the ``telemetry.serving.*`` subtree."""
        with self._registry_lock:
            if self._metrics is None:
                r = MetricsRegistry()
                r.histogram("telemetry.serving.latency",
                            buckets=LATENCY_BUCKETS,
                            description="end-to-end query latency (all tenants)",
                            threadsafe=True)
                r.counter("telemetry.serving.queries", "queries offered",
                          fn=lambda: float(self.queries_offered))
                r.counter("telemetry.serving.admitted", "queries admitted",
                          fn=lambda: float(self.queries_admitted))
                r.counter("telemetry.serving.completed", "queries completed",
                          fn=lambda: float(self.queries_completed))
                r.counter("telemetry.serving.errors",
                          "admitted queries that returned an error",
                          fn=lambda: float(self.query_errors))
                for reason in RejectReason:
                    r.counter(
                        f"telemetry.serving.rejected.{reason.value}",
                        f"queries rejected: {reason.value}",
                        fn=(lambda rr=reason: float(self.rejections[rr])),
                    )
                r.counter("telemetry.serving.saturation_sheds",
                          "submissions shed at the queue watermark",
                          fn=lambda: float(self.saturation_sheds))
                r.gauge("telemetry.serving.queue_depth", "queries queued",
                        fn=lambda: float(self._admission.queued))
                r.gauge("telemetry.serving.inflight", "queries executing",
                        fn=lambda: float(self._admission.inflight()))
                r.gauge("telemetry.serving.tenants", "tenants seen",
                        fn=lambda: float(len(self._admission.tenants)))
                r.gauge("telemetry.serving.workers", "worker pool size",
                        fn=lambda: float(self.max_workers))
                r.gauge("telemetry.serving.shedding",
                        "1 when the breaker has serving in shed-first mode",
                        fn=lambda: float(self.shedding))
                r.counter("telemetry.serving.breaker_opens",
                          "times the frontend breaker opened",
                          fn=lambda: float(self.breaker.opens))
                if self._cache is not None:
                    c = self._cache
                    r.counter("telemetry.serving.cache.hits", "cache hits",
                              fn=lambda: float(c.hits))
                    r.counter("telemetry.serving.cache.misses", "cache misses",
                              fn=lambda: float(c.misses))
                    r.counter("telemetry.serving.cache.invalidations",
                              "entries dropped on watermark mismatch",
                              fn=lambda: float(c.invalidations))
                    r.counter("telemetry.serving.cache.evictions",
                              "entries evicted by LRU capacity",
                              fn=lambda: float(c.evictions))
                    r.gauge("telemetry.serving.cache.entries", "entries held",
                            fn=lambda: float(len(c)))
                self._metrics = r
            return self._metrics

    def health_metrics(self) -> Dict[str, float]:
        return self.metrics.snapshot()

    def cache_stats(self) -> dict:
        return self._cache.stats() if self._cache is not None else {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the worker pool; queued tasks resolve as ``CLOSED``."""
        with self._work:
            if self._closed:
                return
            self._closed = True
            drained = []
            for state in self._admission.tenants.values():
                while state.queue:
                    drained.append(state.queue.popleft())
                    self._admission.queued -= 1
                    state.rejected[RejectReason.CLOSED] += 1
                    self.rejections[RejectReason.CLOSED] += 1
            self._work.notify_all()
        for state, pending in drained:
            pending._resolve(RejectedQuery(
                state.name, pending.query, RejectReason.CLOSED,
                None, "frontend closed before execution",
            ))
        for t in self._threads:
            t.join(timeout=5.0)
        self._threads = []
