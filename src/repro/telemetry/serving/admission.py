"""Per-tenant admission control: token buckets, bounded fair queues.

The admission layer decides, per submitted query, whether it enters the
serving queue at all — and in what order queued work reaches the worker
pool:

* **token-bucket rate limits** per tenant (``rate`` queries/s sustained,
  ``burst`` above it), with an honest ``retry_after_s`` hint on rejection;
* **bounded queues**: per-tenant ``max_queue`` and one global bound, so a
  single tenant flooding the front door fills *its* queue, not everyone's;
* **fair dispatch**: round-robin across tenants with queued work, skipping
  tenants already at their ``max_concurrency`` — a heavy tenant with 10 000
  queued queries still only gets its turn, so light tenants are never
  starved behind it.

The controller is *not* internally locked: every method is called under the
owning :class:`~repro.telemetry.serving.frontend.QueryFrontend`'s dispatch
lock, which also covers the queue/inflight bookkeeping the fairness
decisions read.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.errors import ServingError
from repro.telemetry.serving.query import RejectReason

__all__ = ["TokenBucket", "TenantConfig", "TenantState", "AdmissionController"]


class TokenBucket:
    """Classic token bucket over an injected clock.

    ``rate`` tokens/s accrue up to ``burst``; :meth:`try_take` either takes
    ``cost`` tokens and returns ``0.0`` or leaves the bucket untouched and
    returns the seconds until ``cost`` tokens will be available.
    """

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: float, burst: float, now: float = 0.0):
        if rate <= 0 and not math.isinf(rate):
            raise ServingError(f"token bucket rate must be > 0, got {rate}")
        if burst < 1:
            raise ServingError(f"token bucket burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = now

    def _refill(self, now: float) -> None:
        if now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
            self._last = now

    def try_take(self, now: float, cost: float = 1.0) -> float:
        if math.isinf(self.rate):
            return 0.0
        self._refill(now)
        if self.tokens >= cost:
            self.tokens -= cost
            return 0.0
        return (cost - self.tokens) / self.rate


@dataclass(frozen=True)
class TenantConfig:
    """Admission envelope and visibility scope of one tenant.

    ``visibility`` is a tuple of shell-style patterns naming the series the
    tenant may see (``None`` = everything).  Two tenants with the same
    visibility share cache entries; the patterns — not the tenant name —
    are part of the cache key.
    """

    rate: float = math.inf          # sustained queries/s (inf = unlimited)
    burst: float = 32.0             # bucket depth above the sustained rate
    max_concurrency: int = 4        # queries of this tenant in flight at once
    max_queue: int = 64             # queued queries before QUEUE_FULL
    visibility: Optional[Tuple[str, ...]] = None

    def __post_init__(self):
        if self.visibility is not None:
            object.__setattr__(self, "visibility", tuple(self.visibility))
        if self.max_concurrency < 1:
            raise ServingError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.max_queue < 1:
            raise ServingError(f"max_queue must be >= 1, got {self.max_queue}")
        # Validate the bucket parameters eagerly, at configuration time.
        TokenBucket(self.rate, self.burst)


class TenantState:
    """Mutable per-tenant admission state (owned by the controller)."""

    __slots__ = (
        "name", "config", "bucket", "queue", "inflight",
        "offered", "admitted", "completed", "errors", "rejected",
    )

    def __init__(self, name: str, config: TenantConfig, now: float):
        self.name = name
        self.config = config
        self.bucket = TokenBucket(config.rate, config.burst, now)
        self.queue: Deque = deque()
        self.inflight = 0
        self.offered = 0
        self.admitted = 0
        self.completed = 0
        self.errors = 0
        self.rejected: Dict[RejectReason, int] = {r: 0 for r in RejectReason}

    def stats(self) -> Dict[str, float]:
        out = {
            "offered": float(self.offered),
            "admitted": float(self.admitted),
            "completed": float(self.completed),
            "errors": float(self.errors),
            "queued": float(len(self.queue)),
            "inflight": float(self.inflight),
        }
        for reason, n in self.rejected.items():
            out[f"rejected.{reason.value}"] = float(n)
        return out


class AdmissionController:
    """Token buckets + bounded per-tenant queues + fair round-robin pop."""

    def __init__(
        self,
        default_config: Optional[TenantConfig] = None,
        global_queue: int = 256,
        enabled: bool = True,
    ):
        if global_queue < 1:
            raise ServingError(f"global_queue must be >= 1, got {global_queue}")
        self.default_config = default_config or TenantConfig()
        self.global_queue = global_queue
        self.enabled = enabled
        self.tenants: Dict[str, TenantState] = {}
        self._rr: Deque[str] = deque()
        self.queued = 0

    # ------------------------------------------------------------------
    def tenant(self, name: str, now: float) -> TenantState:
        """Get-or-create a tenant under the default config."""
        state = self.tenants.get(name)
        if state is None:
            state = self.tenants[name] = TenantState(
                name, self.default_config, now
            )
            self._rr.append(name)
        return state

    def configure(self, name: str, config: TenantConfig, now: float) -> TenantState:
        """Install (or replace) a tenant's admission envelope."""
        state = self.tenant(name, now)
        state.config = config
        state.bucket = TokenBucket(config.rate, config.burst, now)
        return state

    # ------------------------------------------------------------------
    def try_admit(
        self, state: TenantState, now: float
    ) -> Optional[Tuple[RejectReason, Optional[float]]]:
        """``None`` to admit, else ``(reason, retry_after_s)``.

        Does not enqueue — the frontend decides (it may still shed on its
        own saturation or breaker state before calling :meth:`push`).
        """
        if not self.enabled:
            return None
        if self.queued >= self.global_queue:
            return (RejectReason.QUEUE_FULL, None)
        if len(state.queue) >= state.config.max_queue:
            return (RejectReason.QUEUE_FULL, None)
        wait = state.bucket.try_take(now)
        if wait > 0.0:
            return (RejectReason.RATE_LIMITED, wait)
        return None

    def push(self, state: TenantState, task) -> None:
        state.queue.append(task)
        self.queued += 1

    def pop(self):
        """Fair dispatch: next runnable task, round-robin across tenants.

        Skips tenants with nothing queued and — when admission is enabled —
        tenants already at ``max_concurrency``.  Returns ``None`` when no
        tenant is runnable right now (workers wait; a task completion or a
        new push re-notifies).
        """
        for _ in range(len(self._rr)):
            name = self._rr[0]
            self._rr.rotate(-1)
            state = self.tenants[name]
            if not state.queue:
                continue
            if self.enabled and state.inflight >= state.config.max_concurrency:
                continue
            task = state.queue.popleft()
            self.queued -= 1
            state.inflight += 1
            return task
        return None

    def task_done(self, state: TenantState) -> None:
        state.inflight -= 1

    # ------------------------------------------------------------------
    def depth(self) -> int:
        return self.queued

    def inflight(self) -> int:
        return sum(s.inflight for s in self.tenants.values())

    def stats(self) -> Dict[str, Dict[str, float]]:
        return {name: s.stats() for name, s in self.tenants.items()}
