"""Watermark-validated LRU cache for query results.

Correctness contract: **a cache hit returns exactly the bits an uncached
execution would return right now.**  That is achieved without any push
invalidation machinery:

* the key is ``(query, visibility-scope)`` — the frozen query dataclass
  plus the tenant's visibility *patterns* (not its name, so tenants with
  the same scope share entries);
* every entry records the **version stamps** of the shards the query can
  read — ``(shard, member, samples_ingested, latest_time, series_count,
  samples_trimmed)`` per involved shard, captured *before* the query ran
  (and re-checked after: an entry is only stored if no ingest raced the
  execution);
* a lookup revalidates by comparing current stamps to the recorded ones.
  Any ingest on an owning shard — or a failover to a different member —
  changes the stamps and the entry is dropped on sight.

Because retention trimming is a deterministic function of
``latest_time`` (and reads enforce the exact cutoff), equal stamps imply
the shard serves byte-identical answers, including through rollup tiers
and the cold archive.  The stamps are conservative — an ingest to *any*
series on an owning shard invalidates queries that didn't touch it — which
trades some hit rate for an unconditional bit-identical guarantee.

Cached payload arrays are stored as read-only copies (hits hand the same
arrays to many callers).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional, Tuple

import numpy as np

from repro.errors import ServingError

__all__ = ["ResultCache"]

#: entry: (versions, payload)
_Entry = Tuple[Tuple, Any]


def freeze_payload(payload: Any) -> Any:
    """Deep-copy a result payload with every ndarray made read-only.

    Range queries return live views onto store buffers; copying under the
    store lock is what makes a cached payload immune to later retention
    compaction, and the writeable flag keeps one tenant's mutation from
    corrupting another's hit.
    """
    if isinstance(payload, np.ndarray):
        frozen = payload.copy()
        frozen.setflags(write=False)
        return frozen
    if isinstance(payload, tuple):
        return tuple(freeze_payload(p) for p in payload)
    if isinstance(payload, list):
        return [freeze_payload(p) for p in payload]
    return payload


class ResultCache:
    """LRU cache whose entries carry per-shard version stamps."""

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ServingError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Any, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.stores = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key, versions: Tuple) -> Optional[Any]:
        """Payload if present *and* still valid against ``versions``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            stored_versions, payload = entry
            if stored_versions != versions:
                # Ingest moved a watermark (or a failover changed the
                # serving member) since this was stored: stale, drop it.
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return payload

    def put(self, key, versions: Tuple, payload: Any) -> None:
        """Store a frozen payload under ``key`` at ``versions``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            elif len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = (versions, payload)
            self.stores += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        lookups = self.hits + self.misses
        return {
            "entries": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_ratio": (self.hits / lookups) if lookups else 0.0,
            "invalidations": float(self.invalidations),
            "evictions": float(self.evictions),
            "stores": float(self.stores),
        }
