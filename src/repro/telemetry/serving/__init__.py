"""Multi-tenant query-serving front door for the telemetry tier.

This is the user-access layer of the paper's framework — the piece that
takes collected and analyzed operational data back to operators and end
users (DCDB Wintermute's pull-based query interface is the production
model).  See :mod:`.frontend` for the architecture overview.
"""

from repro.telemetry.serving.admission import (
    AdmissionController,
    TenantConfig,
    TokenBucket,
)
from repro.telemetry.serving.cache import ResultCache
from repro.telemetry.serving.frontend import (
    LATENCY_BUCKETS,
    PendingQuery,
    QueryFrontend,
)
from repro.telemetry.serving.query import (
    AlignQuery,
    NamesQuery,
    Query,
    QueryResult,
    RangeQuery,
    RejectReason,
    RejectedQuery,
    ResampleQuery,
    SelectQuery,
    ServeOutcome,
)
from repro.telemetry.serving.workload import (
    WorkloadSpec,
    heavy_tailed_workload,
    replay,
    tenant_configs,
)

__all__ = [
    "AdmissionController",
    "TenantConfig",
    "TokenBucket",
    "ResultCache",
    "LATENCY_BUCKETS",
    "PendingQuery",
    "QueryFrontend",
    "AlignQuery",
    "NamesQuery",
    "Query",
    "QueryResult",
    "RangeQuery",
    "RejectReason",
    "RejectedQuery",
    "ResampleQuery",
    "SelectQuery",
    "ServeOutcome",
    "WorkloadSpec",
    "heavy_tailed_workload",
    "replay",
    "tenant_configs",
]
