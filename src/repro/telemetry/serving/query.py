"""Typed queries and results for the serving front door.

The front door speaks *values*, not exceptions: a caller submits one of the
frozen query dataclasses below and always gets a value back — a
:class:`QueryResult` (which may carry an error string for per-query domain
failures like an unknown metric) or a :class:`RejectedQuery` when admission
control turned the request away before execution.  Keeping rejection in the
type system rather than the exception system is what lets one tenant
hammering the API degrade into cheap typed rejections instead of an
exception storm through the worker pool.

The query dataclasses are frozen and hashable on purpose: a query *is* its
own cache-key material (together with the tenant's visibility scope — see
:mod:`.cache`).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple, Union

__all__ = [
    "NamesQuery",
    "SelectQuery",
    "RangeQuery",
    "ResampleQuery",
    "AlignQuery",
    "Query",
    "QueryResult",
    "RejectReason",
    "RejectedQuery",
    "ServeOutcome",
]


@dataclass(frozen=True)
class NamesQuery:
    """Catalog query: every series name visible to the tenant, sorted."""

    kind = "names"


@dataclass(frozen=True)
class SelectQuery:
    """Catalog query: visible names matching a shell-style pattern."""

    pattern: str

    kind = "select"


@dataclass(frozen=True)
class RangeQuery:
    """Raw range read of one series; payload is ``(times, values)``."""

    name: str
    since: float = -math.inf
    until: float = math.inf

    kind = "range"


@dataclass(frozen=True)
class ResampleQuery:
    """Downsample one series onto buckets; payload is ``(grid, values)``."""

    name: str
    since: float
    until: float
    step: float
    agg: str = "mean"
    engine: str = "auto"

    kind = "resample"


@dataclass(frozen=True)
class AlignQuery:
    """Multi-series alignment onto one shared grid.

    Give either explicit ``names`` or a ``pattern`` (resolved against the
    tenant's visible series at execution time).  Payload is
    ``(grid, matrix, resolved_names)``.
    """

    names: Tuple[str, ...] = ()
    pattern: Optional[str] = None
    since: float = 0.0
    until: float = 0.0
    step: float = 60.0
    agg: str = "mean"
    fill: str = "ffill"
    engine: str = "auto"

    kind = "align"

    def __post_init__(self):
        object.__setattr__(self, "names", tuple(self.names))


Query = Union[NamesQuery, SelectQuery, RangeQuery, ResampleQuery, AlignQuery]


class RejectReason(enum.Enum):
    """Why admission control turned a query away before execution."""

    RATE_LIMITED = "rate_limited"    # tenant token bucket empty
    QUEUE_FULL = "queue_full"        # tenant or global queue at capacity
    SHED = "shed"                    # saturation watermark: shed-first mode
    BREAKER_OPEN = "breaker_open"    # frontend breaker open (degraded)
    CLOSED = "closed"                # frontend shut down


@dataclass(frozen=True)
class RejectedQuery:
    """Typed load-shed result — never an exception.

    ``retry_after_s`` is a hint (seconds) for :data:`RejectReason.RATE_LIMITED`;
    ``None`` when retrying sooner cannot help (full queue, open breaker).
    """

    tenant: str
    query: Query
    reason: RejectReason
    retry_after_s: Optional[float] = None
    message: str = ""

    @property
    def ok(self) -> bool:
        return False

    @property
    def rejected(self) -> bool:
        return True


@dataclass
class QueryResult:
    """Outcome of an executed (admitted) query.

    ``ok`` with a ``payload``, or ``not ok`` with an ``error`` string for
    per-query domain failures (unknown/invisible metric, bad arguments,
    shard down).  ``payload`` arrays are read-only: cache hits share them.
    """

    tenant: str
    query: Query
    ok: bool
    payload: Any = None
    error: str = ""
    cache_hit: bool = False
    latency_s: float = field(default=math.nan)

    @property
    def rejected(self) -> bool:
        return False


ServeOutcome = Union[QueryResult, RejectedQuery]
