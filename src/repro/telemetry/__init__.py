"""Telemetry pipeline: the monitoring substrate of the ODA platform.

Mirrors the architecture of production HPC monitoring stacks (LDMS, DCDB,
ExaMon): samplers scrape substrate components, a pub/sub bus transports
sample batches, a columnar time-series store archives them — optionally
tiered into materialized rollup cascades (:mod:`repro.telemetry.rollup`)
and a compressed columnar cold tier (:mod:`repro.telemetry.archive`) —
and an alert engine implements threshold-based descriptive alerting.  The pipeline is
fault-tolerant end to end — raising sources back off, raising sinks are
quarantined with failed deliveries parked in a dead-letter queue — and
publishes its own health metrics (:mod:`repro.telemetry.health`).
Durability comes from :mod:`repro.telemetry.durability`: a checksummed
write-ahead journal with crash-consistent recovery, checksummed archive
persistence, and anti-entropy replica repair.
"""

from repro.telemetry.archive import (
    ArchiveConfig,
    ArchiveTier,
    ColdChunk,
)
from repro.telemetry.alerts import (
    Alert,
    AlertEngine,
    AlertRule,
    AlertSeverity,
    StaleDataRule,
)
from repro.telemetry.bus import DeadLetter, MessageBus, Subscription
from repro.telemetry.collector import CollectionAgent, Sampler, TelemetrySystem
from repro.telemetry.export import (
    load_spans_jsonl,
    to_csv,
    to_json,
    to_rows,
    write_chrome_trace,
    write_csv,
    write_prometheus,
    write_spans_jsonl,
)
from repro.telemetry.durability import (
    JournalConfig,
    RecoveryStats,
    WriteAheadJournal,
    corrupt_artifact,
    scan_journal,
    tear_wal_tail,
)
from repro.telemetry.distributed import (
    FederatedQueryEngine,
    HashPartitioner,
    ReplicaSet,
    ShardFault,
    ShardFaultKind,
    ShardedStore,
)
from repro.telemetry.faults import FaultySource, SensorFault, SensorFaultKind
from repro.telemetry.runtime import (
    ParallelShardRuntime,
    RuntimeConfig,
    SampleRing,
)
from repro.telemetry.health import HEALTH_TOPIC, HealthMonitor
from repro.telemetry.metric import MetricKind, MetricRegistry, MetricSpec, Unit
from repro.telemetry.persistence import load_store, save_store
from repro.telemetry.rollup import (
    SERVABLE_AGGREGATIONS,
    RollupConfig,
    RollupEngine,
)
from repro.telemetry.sample import SampleBatch, merge_batches
from repro.telemetry.serving import (
    AlignQuery,
    NamesQuery,
    QueryFrontend,
    QueryResult,
    RangeQuery,
    RejectReason,
    RejectedQuery,
    ResampleQuery,
    SelectQuery,
    TenantConfig,
)
from repro.telemetry.store import (
    AGGREGATIONS,
    VECTORIZED_AGGREGATIONS,
    SeriesBuffer,
    TimeSeriesStore,
    bucket_edges,
    forward_fill,
    resample_onto,
)

__all__ = [
    "ArchiveConfig",
    "ArchiveTier",
    "ColdChunk",
    "RollupConfig",
    "RollupEngine",
    "SERVABLE_AGGREGATIONS",
    "Alert",
    "AlertEngine",
    "AlertRule",
    "AlertSeverity",
    "StaleDataRule",
    "MessageBus",
    "Subscription",
    "DeadLetter",
    "CollectionAgent",
    "Sampler",
    "TelemetrySystem",
    "FederatedQueryEngine",
    "HashPartitioner",
    "ReplicaSet",
    "ShardFault",
    "ShardFaultKind",
    "ShardedStore",
    "FaultySource",
    "SensorFault",
    "SensorFaultKind",
    "JournalConfig",
    "RecoveryStats",
    "WriteAheadJournal",
    "scan_journal",
    "tear_wal_tail",
    "corrupt_artifact",
    "ParallelShardRuntime",
    "RuntimeConfig",
    "SampleRing",
    "HealthMonitor",
    "HEALTH_TOPIC",
    "MetricKind",
    "MetricRegistry",
    "MetricSpec",
    "Unit",
    "SampleBatch",
    "merge_batches",
    "QueryFrontend",
    "TenantConfig",
    "NamesQuery",
    "SelectQuery",
    "RangeQuery",
    "ResampleQuery",
    "AlignQuery",
    "QueryResult",
    "RejectedQuery",
    "RejectReason",
    "load_store",
    "save_store",
    "AGGREGATIONS",
    "VECTORIZED_AGGREGATIONS",
    "SeriesBuffer",
    "TimeSeriesStore",
    "bucket_edges",
    "forward_fill",
    "resample_onto",
    "to_rows",
    "to_csv",
    "to_json",
    "write_csv",
    "write_chrome_trace",
    "write_spans_jsonl",
    "load_spans_jsonl",
    "write_prometheus",
]
