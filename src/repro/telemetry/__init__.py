"""Telemetry pipeline: the monitoring substrate of the ODA platform.

Mirrors the architecture of production HPC monitoring stacks (LDMS, DCDB,
ExaMon): samplers scrape substrate components, a pub/sub bus transports
sample batches, a columnar time-series store archives them, and an alert
engine implements threshold-based descriptive alerting.
"""

from repro.telemetry.alerts import Alert, AlertEngine, AlertRule, AlertSeverity
from repro.telemetry.bus import MessageBus, Subscription
from repro.telemetry.collector import CollectionAgent, Sampler, TelemetrySystem
from repro.telemetry.metric import MetricKind, MetricRegistry, MetricSpec, Unit
from repro.telemetry.persistence import load_store, save_store
from repro.telemetry.sample import SampleBatch, merge_batches
from repro.telemetry.store import AGGREGATIONS, SeriesBuffer, TimeSeriesStore

__all__ = [
    "Alert",
    "AlertEngine",
    "AlertRule",
    "AlertSeverity",
    "MessageBus",
    "Subscription",
    "CollectionAgent",
    "Sampler",
    "TelemetrySystem",
    "MetricKind",
    "MetricRegistry",
    "MetricSpec",
    "Unit",
    "SampleBatch",
    "merge_batches",
    "load_store",
    "save_store",
    "AGGREGATIONS",
    "SeriesBuffer",
    "TimeSeriesStore",
]
