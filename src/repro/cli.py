"""Command-line interface: ``python -m repro <command>``.

Commands map to the library's main entry points so operators can use the
framework without writing code:

* ``survey``    — regenerate Table I, Figures 1-3 and the survey analysis.
* ``classify``  — map a free-text ODA capability description onto the grid.
* ``roadmap``   — staged recommendations from a list of covered cells.
* ``simulate``  — run the synthetic data center, print KPIs, optionally
  archive the telemetry store to ``.npz``.
* ``replay``    — policy what-if comparison on a synthetic trace.
* ``obs``       — run an instrumented simulation and export observability
  artifacts: a per-operation profile, Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto), span JSONL and a Prometheus snapshot.
* ``chaos``     — run a seeded chaos campaign against a supervised site
  (controller crashes, facility outage, node faults, shard kill) and
  write the resilience scorecard (MTTD/MTTR per fault) as JSON.
* ``serve``     — replay a seeded heavy-tailed multi-tenant query workload
  through the serving front door and print the serving scorecard
  (per-tenant admission stats, cache hit ratio, latency percentiles).
* ``durability`` — kill / corrupt / recover drill against a journaled
  parallel sharded store: crash every shard worker mid-ingest, tear a
  journal tail, bit-flip and truncate persisted archives, then verify
  zero acked-sample loss and zero silently-wrong reads against a shadow
  reference; writes a durability scorecard as JSON.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPC Operational Data Analytics framework and platform",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("survey", help="regenerate Table I, Figures 1-3 and the analysis")

    classify = sub.add_parser("classify", help="classify an ODA description onto the grid")
    classify.add_argument("description", nargs="+", help="free-text capability description")

    roadmap = sub.add_parser("roadmap", help="staged roadmap from covered cells")
    roadmap.add_argument(
        "--covered", nargs="*", default=[],
        help="covered cells as type:pillar (e.g. descriptive:system_hardware)",
    )
    roadmap.add_argument("--horizon", type=int, default=8)

    simulate = sub.add_parser("simulate", help="run the synthetic data center")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--racks", type=int, default=2)
    simulate.add_argument("--nodes-per-rack", type=int, default=8)
    simulate.add_argument("--days", type=float, default=1.0)
    simulate.add_argument("--jobs-per-day", type=float, default=24.0)
    simulate.add_argument("--faults", action="store_true")
    simulate.add_argument("--shards", type=int, default=None, metavar="N",
                          help="archive telemetry in N hash-partitioned "
                               "store shards")
    simulate.add_argument("--replication", type=int, default=0, metavar="R",
                          help="extra replicas per shard (requires --shards)")
    simulate.add_argument("--parallel", action="store_true",
                          help="run each shard's replica set in its own "
                               "worker process fed by shared-memory ring "
                               "buffers (requires --shards)")
    simulate.add_argument("--rollups", action="store_true",
                          help="maintain materialized downsample tiers "
                               "(10s/1m/1h mean-min-max-sum-count) at ingest "
                               "so long resample/align queries are served "
                               "pre-aggregated")
    simulate.add_argument("--archive", action="store_true",
                          help="demote raw samples past retention into an "
                               "immutable compressed columnar cold tier "
                               "instead of deleting them")
    simulate.add_argument("--retention", type=float, default=None,
                          metavar="SECONDS",
                          help="hot-tier retention window (with --archive, "
                               "expired samples are demoted, not dropped)")
    simulate.add_argument("--save-store", metavar="PATH.npz",
                          help="archive the telemetry store (a sharded run "
                               "writes a manifest plus one file per shard)")

    replay = sub.add_parser("replay", help="compare scheduling policies on a trace")
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--days", type=float, default=1.0)
    replay.add_argument("--jobs-per-day", type=float, default=24.0)
    replay.add_argument("--racks", type=int, default=2)
    replay.add_argument("--nodes-per-rack", type=int, default=8)

    obs = sub.add_parser(
        "obs", help="trace + profile an instrumented simulation run"
    )
    obs.add_argument("--seed", type=int, default=0)
    obs.add_argument("--racks", type=int, default=2)
    obs.add_argument("--nodes-per-rack", type=int, default=4)
    obs.add_argument("--hours", type=float, default=2.0)
    obs.add_argument("--jobs-per-day", type=float, default=24.0)
    obs.add_argument("--shards", type=int, default=2, metavar="N",
                     help="telemetry shards (0 = single store)")
    obs.add_argument("--replication", type=int, default=0, metavar="R")
    obs.add_argument("--trace-capacity", type=int, default=65536,
                     help="span ring-buffer bound")
    obs.add_argument("--out", default="obs-artifacts", metavar="DIR",
                     help="directory for trace.json / spans.jsonl / "
                          "metrics.prom")

    chaos = sub.add_parser(
        "chaos", help="run a seeded chaos campaign against a supervised site"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--racks", type=int, default=2)
    chaos.add_argument("--nodes-per-rack", type=int, default=8)
    chaos.add_argument("--days", type=float, default=1.0)
    chaos.add_argument("--jobs-per-day", type=float, default=24.0)
    chaos.add_argument("--shards", type=int, default=2, metavar="N",
                       help="telemetry shards (0 = single store, "
                            "disables the shard-kill fault)")
    chaos.add_argument("--replication", type=int, default=1, metavar="R")
    chaos.add_argument("--out", default="chaos-scorecard.json",
                       metavar="PATH.json",
                       help="where to write the resilience scorecard")

    serve = sub.add_parser(
        "serve",
        help="replay a heavy-tailed multi-tenant query workload through "
             "the serving front door",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--racks", type=int, default=2)
    serve.add_argument("--nodes-per-rack", type=int, default=8)
    serve.add_argument("--hours", type=float, default=4.0,
                       help="simulated hours of telemetry to collect "
                            "before serving")
    serve.add_argument("--jobs-per-day", type=float, default=24.0)
    serve.add_argument("--shards", type=int, default=2, metavar="N",
                       help="telemetry shards (0 = single store)")
    serve.add_argument("--replication", type=int, default=0, metavar="R")
    serve.add_argument("--tenants", type=int, default=6)
    serve.add_argument("--queries", type=int, default=400,
                       help="workload length (Zipf tenants, Zipf hot "
                            "pool, Pareto windows)")
    serve.add_argument("--hot-fraction", type=float, default=0.6,
                       help="fraction of queries re-issuing a hot-pool "
                            "canonical query")
    serve.add_argument("--rate", type=float, default=200.0,
                       help="per-tenant token-bucket rate, queries/s")
    serve.add_argument("--workers", type=int, default=4,
                       help="frontend worker threads (0 = inline)")
    serve.add_argument("--submitters", type=int, default=4,
                       help="concurrent client threads")
    serve.add_argument("--no-admission", action="store_true",
                       help="disable admission control (compare tails)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the result cache")
    serve.add_argument("--out", default=None, metavar="PATH.json",
                       help="also write the serving scorecard as JSON")

    durability = sub.add_parser(
        "durability",
        help="kill/corrupt/recover drill against a journaled store",
    )
    durability.add_argument("--seed", type=int, default=0)
    durability.add_argument("--shards", type=int, default=2, metavar="N")
    durability.add_argument("--replication", type=int, default=1, metavar="R")
    durability.add_argument("--series", type=int, default=24,
                            help="synthetic series count")
    durability.add_argument("--batches", type=int, default=160,
                            help="ingest batches per phase")
    durability.add_argument("--workdir", default=None, metavar="DIR",
                            help="journal + archive directory "
                                 "(default: a fresh temp dir, removed "
                                 "afterwards)")
    durability.add_argument("--out", default="durability-scorecard.json",
                            metavar="PATH.json",
                            help="where to write the durability scorecard")
    return parser


def _cmd_survey() -> int:
    from repro.analytics.descriptive import table
    from repro.core import (
        analyze_survey, figure3_systems, render_fig1, render_fig2,
        render_fig3, render_occupancy, render_table1, survey_grid,
    )

    grid = survey_grid()
    print(render_fig1())
    print()
    print(render_fig2())
    print()
    print(render_table1(grid))
    print()
    print(render_occupancy(grid))
    print()
    print(render_fig3(figure3_systems()))
    print()
    print(table(analyze_survey(grid).rows(), title="Survey statistics"))
    return 0


def _cmd_classify(words: List[str]) -> int:
    from repro.core import UseCaseClassifier
    from repro.errors import ClassificationError

    text = " ".join(words)
    try:
        print(UseCaseClassifier().explain(text))
    except ClassificationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_roadmap(covered: List[str], horizon: int) -> int:
    from repro.core import AnalyticsType, GridCell, Pillar, plan_roadmap

    cells = []
    for item in covered:
        try:
            type_name, pillar_name = item.split(":")
            cells.append(GridCell(AnalyticsType(type_name), Pillar(pillar_name)))
        except (ValueError, KeyError):
            print(f"error: bad cell spec {item!r} (want type:pillar)", file=sys.stderr)
            return 1
    for step in plan_roadmap(cells, horizon=horizon):
        print(f"{step.priority}. {step.cell.label}")
        print(f"   {step.rationale}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analytics.descriptive import table
    from repro.oda import DataCenter, collect_kpis
    from repro.telemetry import save_store

    if args.parallel and args.shards is None:
        print("error: --parallel requires --shards", file=sys.stderr)
        return 1
    dc = DataCenter(
        seed=args.seed, racks=args.racks, nodes_per_rack=args.nodes_per_rack,
        enable_faults=args.faults, shards=args.shards,
        replication=args.replication, parallel=args.parallel,
        rollups=args.rollups, archive=args.archive,
        store_retention=args.retention,
    )
    try:
        requests = dc.generate_workload(
            days=args.days, jobs_per_day=args.jobs_per_day
        )
        print(f"simulating {args.days} days, {len(requests)} submissions ...")
        dc.run(days=args.days)
        kpis = collect_kpis(dc)
        print(table(kpis.rows(), title="Run KPIs"))
        if args.shards is not None:
            health = dc.store.health_metrics()
            per_shard = [
                int(health[f"telemetry.shard.{i}.series"])
                for i in range(args.shards)
            ]
            print(
                f"sharded store: {args.shards} shards x "
                f"{args.replication + 1} copies, series per shard {per_shard}"
            )
        if args.parallel:
            runtime = dc.store.runtime
            print(
                f"parallel runtime: {args.shards} shard workers, "
                f"{runtime.pushed_batches} batches pushed "
                f"({runtime.pushed_slots} ring slots), "
                f"{runtime.backpressure_waits} backpressure waits, "
                f"{runtime.dropped_batches} dropped, "
                f"{runtime.worker_crashes} crashes"
            )
        if args.rollups or args.archive:
            # Tier stats live on the member stores; worker-process members
            # keep them in-process, so report what is directly reachable.
            if args.shards is None:
                stores = [dc.store]
            elif not args.parallel:
                stores = [rs.read_store() for rs in dc.store.replica_sets]
            else:
                stores = []
            if stores and args.rollups:
                print(
                    "rollups: "
                    f"{sum(s.rollups.buckets_finalized for s in stores)} "
                    "buckets materialized, "
                    f"{sum(s.rollups.tier_hits for s in stores)} queries "
                    "served entirely from tiers"
                )
            if stores and args.archive:
                encoded = sum(s.archive.encoded_bytes for s in stores)
                raw = sum(s.archive.raw_bytes for s in stores)
                ratio = (f"{raw / encoded:.1f}x compression" if encoded
                         else "nothing demoted yet")
                print(
                    "cold tier: "
                    f"{sum(s.archive.chunk_count() for s in stores)} chunks, "
                    f"{sum(s.archive.samples() for s in stores)} samples, "
                    f"{ratio}"
                )
        if args.save_store:
            count = save_store(dc.store, args.save_store)
            print(f"archived {count} series to {args.save_store}")
    finally:
        # Graceful drain: workers apply + flush everything pushed, then exit.
        dc.close()
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.analytics.prescriptive import CoolingAwarePolicy, PowerAwarePolicy
    from repro.apps import WorkloadGenerator
    from repro.software import EasyBackfillPolicy, FcfsPolicy, compare_policies

    generator = WorkloadGenerator(
        np.random.default_rng(args.seed), jobs_per_day=args.jobs_per_day,
        max_nodes=args.racks * args.nodes_per_rack,
    )
    requests = generator.generate(0.0, args.days * 86_400.0)
    print(f"replaying {len(requests)} submissions under 4 policies ...")
    results = compare_policies(
        requests,
        {
            "fcfs": FcfsPolicy(),
            "easy_backfill": EasyBackfillPolicy(),
            "power_aware": PowerAwarePolicy(
                power_cap_w=args.racks * args.nodes_per_rack * 300.0
            ),
            "cooling_aware": CoolingAwarePolicy(),
        },
        racks=args.racks,
        nodes_per_rack=args.nodes_per_rack,
    )
    for result in results:
        print("  " + ", ".join(f"{k}={v}" for k, v in result.rows()))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import os

    from repro.obs import OBS
    from repro.oda import DataCenter
    from repro.oda.pipeline import DerivedMetricStage
    from repro.telemetry.export import (
        write_chrome_trace,
        write_prometheus,
        write_spans_jsonl,
    )

    hours = args.hours
    shards = args.shards if args.shards and args.shards > 0 else None
    OBS.reset(trace_capacity=args.trace_capacity)
    OBS.enable()
    try:
        dc = DataCenter(
            seed=args.seed, racks=args.racks,
            nodes_per_rack=args.nodes_per_rack, shards=shards,
            replication=args.replication, health_period=600.0,
        )
        DerivedMetricStage(
            dc.telemetry.bus, "facility", "derived.pue",
            inputs=("facility.power.site_power", "facility.power.it_power"),
            compute=lambda v: {
                "derived.pue": v["facility.power.site_power"]
                / max(v["facility.power.it_power"], 1.0)
            },
        )
        requests = dc.generate_workload(
            days=hours / 24.0, jobs_per_day=args.jobs_per_day
        )
        print(
            f"tracing {hours:g} simulated hours "
            f"({len(requests)} submissions, "
            f"shards={shards or 1}x{args.replication + 1}) ..."
        )
        dc.run(seconds=hours * 3600.0)
        # Exercise the federated read path so query spans appear too.
        names = dc.store.select("cluster.*")[:8] or dc.store.names()[:8]
        if names:
            dc.store.align(names, 0.0, hours * 3600.0, 300.0)

        tracer = OBS.tracer
        print(
            f"spans: {tracer.finished} finished, "
            f"{tracer.dropped} evicted (capacity {tracer.capacity})"
        )
        header = (
            f"{'span':<24}{'count':>8}{'total_s':>10}{'mean_us':>10}"
            f"{'p95_us':>10}{'p99_us':>10}{'errors':>8}"
        )
        print(header)
        print("-" * len(header))
        for name, row in OBS.report().items():
            print(
                f"{name:<24}{int(row['count']):>8}"
                f"{row['total_s']:>10.4f}"
                f"{row.get('mean_s', 0.0) * 1e6:>10.1f}"
                f"{row.get('p95_s', 0.0) * 1e6:>10.1f}"
                f"{row.get('p99_s', 0.0) * 1e6:>10.1f}"
                f"{int(row['errors']):>8}"
            )

        os.makedirs(args.out, exist_ok=True)
        trace_path = os.path.join(args.out, "trace.json")
        spans_path = os.path.join(args.out, "spans.jsonl")
        prom_path = os.path.join(args.out, "metrics.prom")
        events = write_chrome_trace(trace_path, tracer)
        write_spans_jsonl(spans_path, tracer)
        write_prometheus(prom_path, dc.telemetry.prometheus())
        print(
            f"wrote {events} trace events to {trace_path} "
            f"(open in chrome://tracing or Perfetto), spans to "
            f"{spans_path}, metrics to {prom_path}"
        )
    finally:
        OBS.disable()
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.facility.weather import DAY
    from repro.oda import ChaosEngine, DataCenter, MultiPillarOrchestrator
    from repro.oda.chaos import standard_campaign

    shards = args.shards if args.shards and args.shards > 0 else None
    dc = DataCenter(
        seed=args.seed, racks=args.racks, nodes_per_rack=args.nodes_per_rack,
        shards=shards, replication=args.replication if shards else 0,
        health_period=300.0,
    )
    dc.enable_supervision()
    orchestrator = MultiPillarOrchestrator(dc)
    orchestrator.attach()  # auto-supervised: the site has a supervisor

    horizon = args.days * DAY
    campaign = standard_campaign(
        seed=args.seed, horizon_s=horizon, shards=shards is not None,
    )
    engine = ChaosEngine(dc)
    engine.schedule(campaign)
    requests = dc.generate_workload(days=args.days, jobs_per_day=args.jobs_per_day)
    print(
        f"chaos campaign {campaign.name!r}: {len(campaign.faults)} faults "
        f"over {args.days:g} days ({len(requests)} submissions) ..."
    )
    dc.run(days=args.days)

    card = engine.write_scorecard(campaign, args.out)
    totals = card["totals"]
    fmt = lambda v: "n/a" if v is None else f"{v:.0f}s"  # noqa: E731
    for row in card["faults"]:
        print(
            f"  {row['pillar']:<10} {row['target']:<12} {row['mode']:<12} "
            f"mttd={fmt(row['mttd_s'])} mttr={fmt(row['mttr_s'])} "
            f"actions_during={row['actions_during_fault']}"
        )
    print(
        f"detected {totals['detected']}/{totals['faults']}, "
        f"recovered {totals['recovered']}/{totals['faults']}, "
        f"mean MTTD {fmt(totals['mean_mttd_s'])}, "
        f"mean MTTR {fmt(totals['mean_mttr_s'])}, "
        f"safe-state entries {totals.get('safe_state_entries', 0)}, "
        f"breaker opens/closes {totals.get('breaker_opens', 0)}"
        f"/{totals.get('breaker_closes', 0)}"
    )
    print(f"scorecard written to {args.out}")
    return 0 if totals["unrecovered"] == 0 else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.ioutil import atomic_write_json
    from repro.oda import DataCenter
    from repro.telemetry.serving import (
        WorkloadSpec, heavy_tailed_workload, replay, tenant_configs,
    )

    shards = args.shards if args.shards and args.shards > 0 else None
    dc = DataCenter(
        seed=args.seed, racks=args.racks, nodes_per_rack=args.nodes_per_rack,
        shards=shards, replication=args.replication if shards else 0,
    )
    try:
        dc.generate_workload(
            days=args.hours / 24.0, jobs_per_day=args.jobs_per_day,
        )
        dc.run(seconds=args.hours * 3600.0)
        dc.enable_supervision()

        frontend = dc.frontend(
            tenants=tenant_configs(args.tenants, base_rate=args.rate),
            max_workers=args.workers,
            admission=not args.no_admission,
            cache=not args.no_cache,
        )
        names = dc.store.names()
        spec = WorkloadSpec(
            tenants=args.tenants, queries=args.queries, seed=args.seed,
            hot_fraction=args.hot_fraction,
        )
        events = heavy_tailed_workload(names, 0.0, dc.sim.now, spec)
        print(
            f"serving {len(events)} queries from {args.tenants} tenants "
            f"over {len(names)} series "
            f"({'sharded x' + str(shards) if shards else 'single store'}, "
            f"{args.workers} workers, {args.submitters} submitters, "
            f"admission {'off' if args.no_admission else 'on'}, "
            f"cache {'off' if args.no_cache else 'on'}) ..."
        )
        outcomes = replay(frontend, events, submitters=args.submitters)

        ok = sum(1 for o in outcomes if o.ok)
        rejected = sum(1 for o in outcomes if o.rejected)
        errors = len(outcomes) - ok - rejected
        hits = sum(1 for o in outcomes if o.ok and o.cache_hit)
        snap = frontend.health_metrics()
        cache = frontend.cache_stats()
        print(f"  ok {ok}  rejected {rejected}  errors {errors}")
        if cache:
            print(
                f"  cache: hit_ratio {cache['hit_ratio']:.2f} "
                f"({hits} served from cache, "
                f"{cache['invalidations']:.0f} invalidations)"
            )
        lat = {
            q: snap.get(f"telemetry.serving.latency.{q}", float("nan"))
            for q in ("p50", "p95", "p99")
        }
        print(
            "  latency: "
            + "  ".join(f"{q} {v * 1e3:.2f}ms" for q, v in lat.items())
        )
        print(f"  {'tenant':<10} {'offered':>8} {'admitted':>9} "
              f"{'completed':>10} {'rejected':>9}")
        tenant_rows = {}
        for name in sorted(frontend.tenant_stats()):
            s = frontend.tenant_stats()[name]
            rej = sum(v for k, v in s.items() if k.startswith("rejected."))
            tenant_rows[name] = s
            print(
                f"  {name:<10} {s['offered']:>8.0f} {s['admitted']:>9.0f} "
                f"{s['completed']:>10.0f} {rej:>9.0f}"
            )
        if args.out:
            card = {
                "config": {
                    "seed": args.seed, "tenants": args.tenants,
                    "queries": args.queries, "shards": shards or 0,
                    "workers": args.workers, "submitters": args.submitters,
                    "admission": not args.no_admission,
                    "cache": not args.no_cache,
                },
                "outcomes": {
                    "ok": ok, "rejected": rejected, "errors": errors,
                    "cache_hits": hits,
                },
                "latency_s": lat,
                "cache": cache,
                "tenants": tenant_rows,
            }
            atomic_write_json(args.out, card)
            print(f"scorecard written to {args.out}")
    finally:
        dc.close()
    return 0 if errors == 0 else 1


def _cmd_durability(args: argparse.Namespace) -> int:
    import os
    import shutil
    import tempfile

    from repro.ioutil import atomic_write_json
    from repro.telemetry import SampleBatch
    from repro.telemetry.distributed import ShardedStore
    from repro.telemetry.durability import corrupt_artifact, tear_wal_tail
    from repro.telemetry.persistence import load_store, save_store

    rng = np.random.default_rng(args.seed)
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-durability-")
    cleanup = args.workdir is None
    os.makedirs(workdir, exist_ok=True)
    wal_dir = os.path.join(workdir, "wal")
    names = tuple(f"drill.series{i:03d}" for i in range(args.series))
    # Shadow reference: every sample we ever handed to the store, exactly.
    shadow = {n: ([], []) for n in names}
    acked = {n: 0 for n in names}  # per-series sample count known durable
    lost_acked = 0
    silent = 0
    undetected = 0
    recovered = 0
    clock = 0.0
    phases = {}

    def ingest(store, batches):
        nonlocal clock
        for _ in range(batches):
            clock += 1.0
            values = rng.normal(100.0, 15.0, len(names))
            store.ingest("drill", SampleBatch(clock, names, values))
            for n, v in zip(names, values):
                shadow[n][0].append(clock)
                shadow[n][1].append(float(v))

    def ack(store):
        # flush + fsync: everything handed over so far is now "acked" —
        # the drill holds the store to it across every crash below.
        store.flush()
        store.sync_journal()
        for n in names:
            acked[n] = len(shadow[n][0])

    def verify(store, label):
        """Count acked samples missing and present-but-wrong values."""
        nonlocal lost_acked, silent
        missing = wrong = 0
        for n in names:
            times = np.asarray(shadow[n][0])
            vals = np.asarray(shadow[n][1])
            try:
                got_t, got_v = store.query(n)
            except KeyError:
                got_t, got_v = np.array([]), np.array([])
            present = np.isin(times, got_t)
            missing += int(acked[n] - np.count_nonzero(present[: acked[n]]))
            idx = np.searchsorted(got_t, times[present])
            wrong += int(np.count_nonzero(got_v[idx] != vals[present]))
        lost_acked += missing
        silent += wrong
        phases[label] = {"lost_acked_samples": missing,
                         "silently_wrong_samples": wrong}
        status = "OK" if missing == 0 and wrong == 0 else "FAIL"
        print(f"  {label:<22} lost_acked={missing} wrong={wrong}  {status}")
        return missing == 0 and wrong == 0

    store = ShardedStore(shards=args.shards, replication=args.replication,
                         parallel=True, journal=wal_dir)
    print(
        f"durability drill: {args.shards} shards x {args.replication + 1} "
        f"copies, {args.series} series, journal at {wal_dir}"
    )
    try:
        # Phase 1: crash every worker mid-ingest, restart, verify.
        ingest(store, args.batches)
        ack(store)
        ingest(store, args.batches // 4)  # unacked tail in flight
        for shard in range(args.shards):
            store.runtime.crash_worker(shard)
            store.runtime.restart_worker(shard)
        store.flush()
        verify(store, "worker_kill")

        # Phase 2: crash shard 0 and tear its journal tail, then recover.
        # The tear lands in the unsynced tail (written after the fsync
        # point), the crash-mid-write case the framing is built for.
        ingest(store, args.batches)
        ack(store)
        ingest(store, args.batches // 4)
        store.runtime.crash_worker(0)
        tear_wal_tail(os.path.join(wal_dir, "shard0", "wal"),
                      rng=np.random.default_rng(args.seed + 1))
        store.runtime.restart_worker(0)
        store.flush()
        verify(store, "torn_wal")

        # Phase 3: archive to checksummed v4, damage artifacts, reload —
        # corruption must be *detected* (counted degraded), never served.
        archive = os.path.join(workdir, "archive.npz")
        save_store(store, archive)
        for mode in ("bitflip", "truncate"):
            probe_dir = os.path.join(workdir, f"probe-{mode}")
            shutil.copytree(workdir, probe_dir,
                            ignore=shutil.ignore_patterns("wal", "probe-*"))
            victims = sorted(
                f for f in os.listdir(probe_dir) if f.endswith(".npz")
            )
            victim = os.path.join(probe_dir, victims[len(victims) // 2])
            corrupt_artifact(victim, mode=mode,
                             rng=np.random.default_rng(args.seed + 2))
            detected, wrong = 0, 0
            try:
                loaded = load_store(os.path.join(probe_dir, "archive.npz"))
            except Exception as exc:  # typed refusal is also detection
                detected = 1
                print(f"  archive_{mode:<14} refused: "
                      f"{type(exc).__name__}  OK")
            else:
                detected = int(getattr(loaded, "corrupt_artifacts", 0))
                for n in loaded.names():
                    got_t, got_v = loaded.query(n)
                    times = np.asarray(shadow[n][0])
                    vals = np.asarray(shadow[n][1])
                    present = np.isin(times, got_t)
                    idx = np.searchsorted(got_t, times[present])
                    wrong += int(
                        np.count_nonzero(got_v[idx] != vals[present])
                    )
                status = "OK" if detected and wrong == 0 else "FAIL"
                print(f"  archive_{mode:<14} detected={detected} "
                      f"wrong={wrong}  {status}")
            silent += wrong
            if not detected:
                undetected += 1
            phases[f"archive_{mode}"] = {
                "detected": detected, "silently_wrong_samples": wrong,
            }
            shutil.rmtree(probe_dir, ignore_errors=True)

        # Phase 4: full shutdown and cold reopen from the journals.
        store.close()
        store = ShardedStore(
            shards=args.shards, replication=args.replication,
            parallel=True, journal=wal_dir,
        )
        store.flush()
        verify(store, "cold_reopen")
        recovered = int(store.recovered_samples)
        print(f"  recovered {recovered} samples from journals on reopen")
    finally:
        store.close()
        if cleanup:
            shutil.rmtree(workdir, ignore_errors=True)

    ok = lost_acked == 0 and silent == 0 and undetected == 0
    card = {
        "seed": args.seed,
        "config": {
            "shards": args.shards, "replication": args.replication,
            "series": args.series, "batches": args.batches,
        },
        "phases": phases,
        "totals": {
            "acked_samples": int(sum(acked.values())),
            "lost_acked_samples": lost_acked,
            "silently_wrong_samples": silent,
            "undetected_corruptions": undetected,
            "recovered_samples": recovered,
        },
        "pass": ok,
    }
    atomic_write_json(args.out, card, sort_keys=True)
    print(f"scorecard written to {args.out}")
    print("durability drill " + ("PASSED" if ok else "FAILED"))
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "survey":
        return _cmd_survey()
    if args.command == "classify":
        return _cmd_classify(args.description)
    if args.command == "roadmap":
        return _cmd_roadmap(args.covered, args.horizon)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "durability":
        return _cmd_durability(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    raise SystemExit(main())
