"""repro — HPC Operational Data Analytics framework and platform.

Reproduction of *"A Conceptual Framework for HPC Operational Data
Analytics"* (Netti, Shin, Ott, Wilde, Bates — IEEE CLUSTER 2021).

The package has three layers:

* **Substrates** — a synthetic HPC data center: discrete-event engine
  (:mod:`repro.simulation`), building infrastructure (:mod:`repro.facility`),
  cluster hardware (:mod:`repro.cluster`), system software
  (:mod:`repro.software`), applications/workloads (:mod:`repro.apps`) and a
  telemetry pipeline (:mod:`repro.telemetry`).
* **Analytics** — implementations for all four analytics types
  (:mod:`repro.analytics`), covering every cell of the paper's 4x4 grid.
* **Framework** — the paper's conceptual framework as executable taxonomy
  (:mod:`repro.core`) plus ODA system composition (:mod:`repro.oda`).
"""

from repro._version import __version__

__all__ = ["__version__"]
