"""The workload manager: job intake, dispatch, progress and accounting.

The :class:`Scheduler` is the system-software pillar's centerpiece.  On a
periodic tick it advances running jobs using the hardware pillar's actual
progress rates (so DVFS, contention, OS noise and faults all show up as
longer runtimes), enforces walltime limits, reacts to node failures,
invokes the pluggable policy to start pending jobs, and installs the
resulting per-node loads back onto the hardware.

Every lifecycle transition is recorded in the trace log, and completed jobs
accumulate in :attr:`Scheduler.accounting` — the substrate equivalent of a
resource manager's accounting database that job-level ODA mines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.apps.generator import JobRequest
from repro.cluster.node import NodeLoad
from repro.cluster.system import HPCSystem
from repro.errors import SchedulingError
from repro.obs import OBS as _OBS
from repro.simulation.engine import PeriodicHandle, Simulator
from repro.simulation.trace import TraceLog
from repro.software.jobs import Job, JobState
from repro.software.policies import (
    Allocation,
    FcfsPolicy,
    SchedulingContext,
    SchedulingPolicy,
)
from repro.software.queue import JobQueue
from repro.telemetry.collector import Sampler
from repro.telemetry.metric import MetricSpec, Unit

__all__ = ["Scheduler"]


class Scheduler:
    """Pluggable-policy workload manager bound to an :class:`HPCSystem`.

    Parameters
    ----------
    system:
        The hardware aggregate to schedule onto.
    policy:
        Scheduling policy; defaults to FCFS.
    tick:
        Scheduling period in seconds (also the job-progress resolution).
    name:
        Root of software-pillar metric paths.
    """

    def __init__(
        self,
        system: HPCSystem,
        policy: Optional[SchedulingPolicy] = None,
        tick: float = 60.0,
        name: str = "scheduler",
        resubmit_failed: bool = False,
        max_restarts: int = 3,
    ):
        self.system = system
        self.policy = policy or FcfsPolicy()
        self.tick = tick
        self.name = name
        self.resubmit_failed = resubmit_failed
        self.max_restarts = max_restarts
        self.queue = JobQueue()
        self.running: List[Job] = []
        self.accounting: List[Job] = []
        self.jobs: Dict[str, Job] = {}
        self.trace: Optional[TraceLog] = None
        self._sim: Optional[Simulator] = None
        self._handle: Optional[PeriodicHandle] = None
        self._last_tick: Optional[float] = None
        #: Nodes administratively removed from scheduling (maintenance).
        self.drained: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, sim: Simulator, trace: Optional[TraceLog] = None) -> None:
        """Start the periodic scheduling tick."""
        self._sim = sim
        self.trace = trace
        self._handle = sim.schedule_periodic(
            self.tick, lambda s: self._tick(s.now), start_delay=0.0,
            label=f"{self.name}:tick", priority=2,  # after hardware physics
        )

    def detach(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest, now: Optional[float] = None) -> Job:
        """Accept a submission immediately."""
        if request.job_id in self.jobs:
            raise SchedulingError(f"duplicate job id {request.job_id}")
        job = Job(request=request)
        self.jobs[request.job_id] = job
        self.queue.push(job)
        if self.trace is not None:
            self.trace.emit(
                now if now is not None else (self._sim.now if self._sim else 0.0),
                self.name, "job_submit",
                job_id=job.job_id, user=job.user, nodes=job.nodes,
                profile=job.profile_name, walltime=request.walltime_req_s,
            )
        return job

    def load_trace(self, sim: Simulator, requests: List[JobRequest]) -> None:
        """Schedule future submissions as simulator events."""
        for request in requests:
            if request.submit_time < sim.now:
                raise SchedulingError(
                    f"{request.job_id}: submit time {request.submit_time} is in the past"
                )
            sim.schedule_at(
                request.submit_time,
                lambda s, r=request: self.submit(r, s.now),
                label=f"submit:{request.job_id}",
                priority=1,
            )

    def cancel(self, job_id: str, now: float) -> None:
        """Cancel a pending or running job (e.g. a detected cryptominer)."""
        job = self.jobs.get(job_id)
        if job is None or job.terminal:
            return
        if job.state is JobState.PENDING:
            self.queue.remove(job)
        elif job.state is JobState.RUNNING:
            self.running.remove(job)
        job.finish(now, JobState.CANCELLED)
        self.accounting.append(job)
        if self.trace is not None:
            self.trace.emit(now, self.name, "job_cancel", job_id=job_id)

    # ------------------------------------------------------------------
    # The scheduling tick
    # ------------------------------------------------------------------
    def _tick(self, now: float) -> None:
        if _OBS.enabled:
            with _OBS.tracer.span("scheduler.tick", sim_time=now):
                self._tick_impl(now)
            return
        self._tick_impl(now)

    def _tick_impl(self, now: float) -> None:
        dt = self.tick if self._last_tick is None else now - self._last_tick
        self._last_tick = now
        self._advance_running(now, dt)
        self._dispatch(now)
        self._install_loads()

    def _advance_running(self, now: float, dt: float) -> None:
        finished: List[Tuple[Job, JobState]] = []
        for job in self.running:
            down = [
                n for n in job.assigned_nodes if not self.system.node(n).up
            ]
            if down:
                finished.append((job, JobState.FAILED))
                continue
            job.work_done_s += self.system.job_progress_rate(job.job_id) * dt
            if job.work_done_s >= job.request.work_s:
                finished.append((job, JobState.COMPLETED))
            elif job.remaining_walltime(now) <= 0:
                finished.append((job, JobState.TIMEOUT))
        for job, state in finished:
            self.running.remove(job)
            if (
                state is JobState.FAILED
                and self.resubmit_failed
                and job.restarts < self.max_restarts
            ):
                # Restart-from-scratch semantics: the failed job loses its
                # progress and rejoins the queue (the reactive baseline the
                # proactive-maintenance experiment compares against).
                job.state = JobState.PENDING
                job.start_time = None
                job.end_time = None
                job.assigned_nodes = []
                job.work_done_s = 0.0
                job.restarts += 1
                self.queue.push(job)
                if self.trace is not None:
                    self.trace.emit(
                        now, self.name, "job_restart",
                        job_id=job.job_id, restarts=job.restarts,
                    )
                continue
            job.finish(now, state)
            self.accounting.append(job)
            if self.trace is not None:
                self.trace.emit(
                    now, self.name, "job_end",
                    job_id=job.job_id, state=state.value,
                    runtime=job.runtime, wait=job.wait_time,
                    nodes=job.nodes, profile=job.profile_name, user=job.user,
                )

    def free_node_names(self) -> List[str]:
        """Healthy, undrained nodes not assigned to any running job, sorted."""
        busy = {n for job in self.running for n in job.assigned_nodes}
        return sorted(
            node.name
            for node in self.system.nodes
            if node.up and node.name not in busy and node.name not in self.drained
        )

    # ------------------------------------------------------------------
    # Maintenance interface (proactive ODA hooks)
    # ------------------------------------------------------------------
    def drain(self, node_name: str, now: float) -> None:
        """Remove a node from scheduling (running jobs are unaffected)."""
        self.system.node(node_name)  # validates the name
        if node_name not in self.drained:
            self.drained.add(node_name)
            if self.trace is not None:
                self.trace.emit(now, self.name, "node_drain", node=node_name)

    def undrain(self, node_name: str, now: float) -> None:
        """Return a drained node to service."""
        if node_name in self.drained:
            self.drained.discard(node_name)
            if self.trace is not None:
                self.trace.emit(now, self.name, "node_undrain", node=node_name)

    def requeue(self, job_id: str, now: float, keep_progress: bool = True) -> Job:
        """Checkpoint-and-requeue a running job.

        The job returns to PENDING; with ``keep_progress`` its completed
        work survives (checkpoint/restart semantics), otherwise it restarts
        from zero.  Used by proactive maintenance to evacuate jobs from
        nodes predicted to fail.
        """
        job = self.jobs.get(job_id)
        if job is None or job.state is not JobState.RUNNING:
            raise SchedulingError(f"{job_id}: only RUNNING jobs can be requeued")
        self.running.remove(job)
        job.state = JobState.PENDING
        job.start_time = None
        job.end_time = None
        job.assigned_nodes = []
        if not keep_progress:
            job.work_done_s = 0.0
        self.queue.push(job)
        if self.trace is not None:
            self.trace.emit(
                now, self.name, "job_requeue",
                job_id=job_id, work_done=job.work_done_s, kept=keep_progress,
            )
        return job

    def _dispatch(self, now: float) -> None:
        ctx = SchedulingContext(
            now=now,
            system=self.system,
            free_nodes=self.free_node_names(),
            pending=self.queue.snapshot(),
            running=list(self.running),
        )
        allocations = self.policy.select(ctx)
        self._validate(allocations, ctx)
        for allocation in allocations:
            job = allocation.job
            self.queue.remove(job)
            job.start(now, list(allocation.node_names))
            self.running.append(job)
            if self.trace is not None:
                self.trace.emit(
                    now, self.name, "job_start",
                    job_id=job.job_id, nodes=list(allocation.node_names),
                    wait=job.wait_time, profile=job.profile_name, user=job.user,
                )

    @staticmethod
    def _validate(allocations: List[Allocation], ctx: SchedulingContext) -> None:
        free = set(ctx.free_nodes)
        used: set = set()
        pending_ids = {job.job_id for job in ctx.pending}
        for allocation in allocations:
            if allocation.job.job_id not in pending_ids:
                raise SchedulingError(
                    f"policy returned non-pending job {allocation.job.job_id}"
                )
            names = set(allocation.node_names)
            if len(names) != allocation.job.request.nodes:
                raise SchedulingError(
                    f"{allocation.job.job_id}: placement size mismatch"
                )
            if not names <= free or names & used:
                raise SchedulingError(
                    f"{allocation.job.job_id}: placement uses unavailable nodes"
                )
            used |= names

    def _install_loads(self) -> None:
        assignments: Dict[str, Tuple[str, NodeLoad]] = {}
        for job in self.running:
            phase = job.request.profile.phase_at(job.work_done_s)
            for node_name in job.assigned_nodes:
                assignments[node_name] = (job.job_id, phase.load)
        self.system.apply_loads(assignments)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of healthy nodes currently running jobs."""
        up = len([n for n in self.system.nodes if n.up])
        if up == 0:
            return 0.0
        busy = sum(len(job.assigned_nodes) for job in self.running)
        return busy / up

    def _read_sensors(self, now: float) -> Dict[str, float]:
        completed = [j for j in self.accounting if j.state is JobState.COMPLETED]
        return {
            f"{self.name}.queue_length": float(len(self.queue)),
            f"{self.name}.queued_nodes": float(self.queue.total_requested_nodes()),
            f"{self.name}.running_jobs": float(len(self.running)),
            f"{self.name}.utilization": self.utilization(),
            f"{self.name}.completed_jobs": float(len(completed)),
            f"{self.name}.failed_jobs": float(
                sum(1 for j in self.accounting if j.state is JobState.FAILED)
            ),
            f"{self.name}.timeout_jobs": float(
                sum(1 for j in self.accounting if j.state is JobState.TIMEOUT)
            ),
        }

    def metric_specs(self) -> List[MetricSpec]:
        labels = {"pillar": "system_software"}
        names = [
            "queue_length", "queued_nodes", "running_jobs", "utilization",
            "completed_jobs", "failed_jobs", "timeout_jobs",
        ]
        return [
            MetricSpec(f"{self.name}.{n}", Unit.COUNT if n != "utilization" else Unit.FRACTION,
                       low=0, labels=labels)
            for n in names
        ]

    def sampler(self) -> Sampler:
        """Telemetry sampler for scheduler-level metrics."""
        return Sampler(name=self.name, source=self._read_sensors, specs=self.metric_specs())
