"""The pending-job queue.

A thin ordered container with the query helpers scheduling policies need:
FIFO order, priority reordering, and lookahead slices for backfilling.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.errors import SchedulingError
from repro.software.jobs import Job, JobState

__all__ = ["JobQueue"]


class JobQueue:
    """FIFO queue of PENDING jobs with stable ordering."""

    def __init__(self) -> None:
        self._jobs: List[Job] = []

    def push(self, job: Job) -> None:
        if job.state is not JobState.PENDING:
            raise SchedulingError(f"{job.job_id}: only PENDING jobs can be queued")
        self._jobs.append(job)

    def remove(self, job: Job) -> None:
        try:
            self._jobs.remove(job)
        except ValueError:
            raise SchedulingError(f"{job.job_id} is not in the queue") from None

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    def head(self) -> Optional[Job]:
        """The job at the front of the queue, or ``None`` when empty."""
        return self._jobs[0] if self._jobs else None

    def snapshot(self) -> List[Job]:
        """A copy of the current ordering (policies may not mutate it)."""
        return list(self._jobs)

    def reorder(self, key: Callable[[Job], float]) -> None:
        """Stable re-sort of the queue by ``key`` (priority policies)."""
        self._jobs.sort(key=key)

    def total_requested_nodes(self) -> int:
        return sum(job.request.nodes for job in self._jobs)
