"""System-software substrate (the third pillar).

Job model and queue, the pluggable-policy workload manager
(:class:`~repro.software.scheduler.Scheduler`), baseline scheduling
policies, the GEOPM-like node runtime for DVFS governors, and OS-noise
injection.
"""

from repro.software.jobs import Job, JobState
from repro.software.os_noise import OsNoiseInjector
from repro.software.policies import (
    Allocation,
    EasyBackfillPolicy,
    FcfsPolicy,
    PriorityPolicy,
    SchedulingContext,
    SchedulingPolicy,
    estimate_job_power,
)
from repro.software.queue import JobQueue
from repro.software.runtime import FrequencyGovernor, NodeRuntime
from repro.software.scheduler import Scheduler
from repro.software.whatif import ReplayResult, compare_policies, replay

__all__ = [
    "Job",
    "JobState",
    "OsNoiseInjector",
    "Allocation",
    "EasyBackfillPolicy",
    "FcfsPolicy",
    "PriorityPolicy",
    "SchedulingContext",
    "SchedulingPolicy",
    "estimate_job_power",
    "JobQueue",
    "FrequencyGovernor",
    "NodeRuntime",
    "Scheduler",
    "ReplayResult",
    "compare_policies",
    "replay",
]
