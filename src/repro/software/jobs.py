"""Job model and lifecycle.

Wraps an application-pillar :class:`~repro.apps.generator.JobRequest` with
the scheduler-visible state machine: PENDING -> RUNNING -> {COMPLETED,
TIMEOUT, FAILED, CANCELLED}.  Completed jobs retain their full timing record
so descriptive scheduling analytics (slowdown [60], wait time, utilization)
and predictive job analytics (duration prediction [30][34]) can be computed
from the accounting log alone, exactly as sites do from their resource
manager databases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.apps.generator import JobRequest
from repro.errors import SchedulingError

__all__ = ["JobState", "Job"]


class JobState(Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"   # finished its work
    TIMEOUT = "timeout"       # hit its requested walltime
    FAILED = "failed"         # lost a node
    CANCELLED = "cancelled"


_TERMINAL = {JobState.COMPLETED, JobState.TIMEOUT, JobState.FAILED, JobState.CANCELLED}


@dataclass
class Job:
    """A job in the scheduling system.

    Attributes
    ----------
    request:
        The immutable submission record.
    state:
        Current lifecycle state.
    start_time / end_time:
        Set on transitions; ``None`` until they happen.
    assigned_nodes:
        Node names allocated while RUNNING.
    work_done_s:
        Accumulated work progress (work-seconds completed).
    frequency_ghz:
        Optional per-job DVFS override applied by runtime systems.
    """

    request: JobRequest
    state: JobState = JobState.PENDING
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    assigned_nodes: List[str] = field(default_factory=list)
    work_done_s: float = 0.0
    frequency_ghz: Optional[float] = None
    #: Times the job was restarted after a node failure (lost its work).
    restarts: int = 0

    # ------------------------------------------------------------------
    # Convenience passthroughs
    # ------------------------------------------------------------------
    @property
    def job_id(self) -> str:
        return self.request.job_id

    @property
    def user(self) -> str:
        return self.request.user

    @property
    def nodes(self) -> int:
        return self.request.nodes

    @property
    def profile_name(self) -> str:
        return self.request.profile.name

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def start(self, now: float, nodes: List[str]) -> None:
        if self.state is not JobState.PENDING:
            raise SchedulingError(f"{self.job_id}: cannot start from {self.state}")
        if len(nodes) != self.request.nodes:
            raise SchedulingError(
                f"{self.job_id}: allocated {len(nodes)} nodes, requested {self.request.nodes}"
            )
        self.state = JobState.RUNNING
        self.start_time = now
        self.assigned_nodes = list(nodes)

    def finish(self, now: float, state: JobState) -> None:
        if self.state is not JobState.RUNNING and state is not JobState.CANCELLED:
            raise SchedulingError(f"{self.job_id}: cannot finish from {self.state}")
        if state not in _TERMINAL:
            raise SchedulingError(f"{self.job_id}: {state} is not terminal")
        self.state = state
        self.end_time = now
        if state is not JobState.COMPLETED:
            # failed/killed jobs release nodes but keep the record
            pass
        self.assigned_nodes = [] if state is JobState.CANCELLED else self.assigned_nodes

    # ------------------------------------------------------------------
    # Derived timings
    # ------------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    @property
    def wait_time(self) -> Optional[float]:
        """Queue wait in seconds (needs a start time)."""
        if self.start_time is None:
            return None
        return self.start_time - self.request.submit_time

    @property
    def runtime(self) -> Optional[float]:
        """Wall-clock execution time (needs start and end)."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def turnaround(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.request.submit_time

    def slowdown(self, threshold: float = 10.0) -> Optional[float]:
        """Bounded slowdown (Feitelson [60]).

        ``(wait + runtime) / max(runtime, threshold)``, with the threshold
        guarding against tiny jobs dominating the metric.
        """
        if self.runtime is None or self.wait_time is None:
            return None
        return (self.wait_time + self.runtime) / max(self.runtime, threshold)

    @property
    def node_seconds(self) -> Optional[float]:
        if self.runtime is None:
            return None
        return self.runtime * self.request.nodes

    def remaining_walltime(self, now: float) -> float:
        """Seconds until the walltime limit kills the job."""
        if self.start_time is None:
            return self.request.walltime_req_s
        return self.request.walltime_req_s - (now - self.start_time)
