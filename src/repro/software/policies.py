"""Scheduling policies: the plugin interface plus the classic baselines.

The policy interface is deliberately the integration point for prescriptive
ODA: the baselines here (FCFS, EASY backfill, priority) are pure software-
pillar implementations, while power-aware and cooling-aware policies in
:mod:`repro.analytics.prescriptive` implement the same protocol using
telemetry-derived models — exactly the layering the paper describes for
"power and KPI-aware scheduling" [21]-[23].
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.system import HPCSystem
from repro.software.jobs import Job

__all__ = [
    "Allocation",
    "SchedulingContext",
    "SchedulingPolicy",
    "FcfsPolicy",
    "EasyBackfillPolicy",
    "PriorityPolicy",
    "estimate_job_power",
]


@dataclass(frozen=True)
class Allocation:
    """A scheduling decision: start ``job`` on ``node_names``."""

    job: Job
    node_names: Tuple[str, ...]


@dataclass
class SchedulingContext:
    """Everything a policy may consult when deciding.

    Attributes
    ----------
    now:
        Current simulation time.
    system:
        The hardware aggregate (for node state, topology, temperatures).
    free_nodes:
        Names of idle, healthy nodes, in stable (sorted) order.
    pending:
        Queue snapshot in queue order.
    running:
        Currently running jobs.
    """

    now: float
    system: HPCSystem
    free_nodes: List[str]
    pending: List[Job]
    running: List[Job]


class SchedulingPolicy(ABC):
    """Protocol: inspect the context, return start decisions.

    Policies must not mutate the context; the scheduler validates that the
    returned allocations are disjoint and use only free nodes.
    """

    name: str = "abstract"

    @abstractmethod
    def select(self, ctx: SchedulingContext) -> List[Allocation]:
        """Return the set of jobs to start now, with their placements."""

    # ------------------------------------------------------------------
    def place(self, job: Job, free_nodes: Sequence[str], ctx: SchedulingContext) -> Tuple[str, ...]:
        """Choose nodes for ``job`` from ``free_nodes`` (first-fit default).

        Subclasses override this for topology/thermal-aware placement.
        """
        return tuple(free_nodes[: job.request.nodes])


def estimate_job_power(job: Job, system: HPCSystem) -> float:
    """Rough per-job power estimate from the application's mean load.

    Uses the node power model at nominal frequency with the profile's
    work-weighted average utilization — the kind of static estimate a
    power-aware scheduler has before a job has run (cf. Evalix [31]).
    """
    mean = job.request.profile.mean_load()
    if not system.nodes:
        return 0.0
    reference = system.nodes[0]
    per_node = reference.idle_power_w + reference.max_dynamic_w * mean.cpu_util
    return per_node * job.request.nodes


class FcfsPolicy(SchedulingPolicy):
    """First-come first-served, head-of-queue blocking."""

    name = "fcfs"

    def select(self, ctx: SchedulingContext) -> List[Allocation]:
        allocations: List[Allocation] = []
        free = list(ctx.free_nodes)
        for job in ctx.pending:
            if job.request.nodes > len(free):
                break  # strict FCFS: the head blocks everything behind it
            nodes = self.place(job, free, ctx)
            allocations.append(Allocation(job, nodes))
            free = [n for n in free if n not in set(nodes)]
        return allocations


class EasyBackfillPolicy(SchedulingPolicy):
    """EASY backfilling (Feitelson & Weil).

    The head job gets a reservation at the *shadow time* — the earliest
    instant enough nodes will be free assuming running jobs exit at their
    walltime limits.  Jobs behind the head may start now iff they fit the
    currently free nodes and either (a) finish before the shadow time or
    (b) avoid the head job's reserved nodes ("extra" nodes).
    """

    name = "easy_backfill"

    def select(self, ctx: SchedulingContext) -> List[Allocation]:
        allocations: List[Allocation] = []
        free = list(ctx.free_nodes)

        pending = list(ctx.pending)
        # Start jobs in order while they fit.
        while pending and pending[0].request.nodes <= len(free):
            job = pending.pop(0)
            nodes = self.place(job, free, ctx)
            allocations.append(Allocation(job, nodes))
            free = [n for n in free if n not in set(nodes)]
        if not pending:
            return allocations

        head = pending[0]
        shadow_time, extra = self._shadow(ctx, head, len(free))

        for job in pending[1:]:
            need = job.request.nodes
            if need > len(free):
                continue
            finishes_by = ctx.now + job.request.walltime_req_s
            if finishes_by <= shadow_time or need <= extra:
                nodes = self.place(job, free, ctx)
                allocations.append(Allocation(job, nodes))
                free = [n for n in free if n not in set(nodes)]
                extra = min(extra, len(free))
        return allocations

    @staticmethod
    def _shadow(ctx: SchedulingContext, head: Job, free_now: int) -> Tuple[float, int]:
        """Compute (shadow_time, extra_nodes) for the head reservation."""
        releases = sorted(
            (job.start_time + job.request.walltime_req_s, job.request.nodes)
            for job in ctx.running
            if job.start_time is not None
        )
        available = free_now
        for release_time, released in releases:
            if available >= head.request.nodes:
                break
            available += released
            shadow = release_time
        else:
            shadow = releases[-1][0] if releases else ctx.now
        if available >= head.request.nodes:
            extra = available - head.request.nodes
        else:
            extra = 0
        if free_now >= head.request.nodes:
            shadow = ctx.now
            extra = free_now - head.request.nodes
        return shadow, extra


class PriorityPolicy(SchedulingPolicy):
    """Order the queue by a priority key, then schedule greedily (no blocking).

    ``key`` maps a job to a float; lower sorts first.  The default favors
    short, small jobs (SJF-like), a common throughput-oriented baseline.
    """

    name = "priority"

    def __init__(self, key: Optional[Callable[[Job], float]] = None):
        self._key = key or (
            lambda job: job.request.walltime_req_s * job.request.nodes
        )

    def select(self, ctx: SchedulingContext) -> List[Allocation]:
        allocations: List[Allocation] = []
        free = list(ctx.free_nodes)
        for job in sorted(ctx.pending, key=self._key):
            if job.request.nodes <= len(free):
                nodes = self.place(job, free, ctx)
                allocations.append(Allocation(job, nodes))
                free = [n for n in free if n not in set(nodes)]
        return allocations
