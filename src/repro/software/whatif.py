"""What-if scheduler simulation (AccaSim/Batsim/Alea-class [49][50][51]).

The predictive system-software use case of Table I: evaluate candidate
scheduling policies on a recorded (or synthetic) submission trace without
touching production — "enabling the identification of optimal scheduling
policies in function of a site's application workload".

:func:`replay` runs one trace against one policy on a fresh substrate and
returns a comparable report; :func:`compare_policies` sweeps several
policies over the same trace and ranks them by a chosen KPI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from typing import TYPE_CHECKING

from repro.apps.generator import JobRequest

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.analytics.descriptive.scheduling_metrics import SchedulingReport
from repro.cluster.system import HPCSystem, build_system
from repro.errors import InsufficientDataError
from repro.simulation.engine import Simulator
from repro.simulation.trace import TraceLog
from repro.software.jobs import JobState
from repro.software.policies import SchedulingPolicy
from repro.software.scheduler import Scheduler

__all__ = ["ReplayResult", "replay", "compare_policies"]


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one policy replay."""

    policy_name: str
    completed: int
    total: int
    utilization: float
    makespan_s: float
    it_energy_kwh: float
    qos: Optional["SchedulingReport"]

    @property
    def completion_fraction(self) -> float:
        return self.completed / self.total if self.total else 0.0

    def rows(self) -> List[tuple]:
        out = [
            ("policy", self.policy_name),
            ("completed", f"{self.completed}/{self.total}"),
            ("utilization", round(self.utilization, 3)),
            ("makespan [h]", round(self.makespan_s / 3600.0, 2)),
            ("IT energy [kWh]", round(self.it_energy_kwh, 2)),
        ]
        if self.qos is not None:
            out.append(("mean bounded slowdown", round(self.qos.mean_slowdown, 2)))
            out.append(("mean wait [s]", round(self.qos.mean_wait_s, 1)))
        return out


def replay(
    requests: Sequence[JobRequest],
    policy: SchedulingPolicy,
    racks: int = 2,
    nodes_per_rack: int = 8,
    drain: bool = True,
    max_days: float = 30.0,
    tick: float = 60.0,
) -> ReplayResult:
    """Run a submission trace under ``policy`` on a fresh simulated system.

    With ``drain`` the simulation continues past the last submission until
    every job is terminal (or ``max_days`` elapse), so makespan and energy
    cover the whole trace.
    """
    if not requests:
        raise InsufficientDataError("cannot replay an empty trace")
    first = min(r.submit_time for r in requests)
    last = max(r.submit_time for r in requests)

    sim = Simulator(start_time=first)
    trace = TraceLog()
    system = build_system(racks=racks, nodes_per_rack=nodes_per_rack, tick=tick / 2)
    system.attach(sim, trace, np.random.default_rng(0))
    scheduler = Scheduler(system, policy=policy, tick=tick)
    scheduler.attach(sim, trace)
    scheduler.load_trace(sim, list(requests))

    # Integrate IT energy from the substrate directly (no telemetry stack
    # needed for a what-if run): sample on the scheduler tick.
    energy = {"joules": 0.0, "last": sim.now}

    def meter(s: Simulator) -> None:
        dt = s.now - energy["last"]
        energy["joules"] += system.it_power_w * dt
        energy["last"] = s.now

    sim.schedule_periodic(tick, meter, label="energy_meter", priority=9)

    sim.run_until(last + tick)
    if drain:
        deadline = last + max_days * 86_400.0
        stalled_hours = 0
        previous_state = None
        while sim.now < deadline and any(
            not j.terminal for j in scheduler.jobs.values()
        ):
            sim.run(3600.0)
            # Stall detection: a policy can starve a job forever (e.g. a
            # power cap its estimate never fits under).  If nothing runs
            # and nothing changed for a day, the remaining jobs will never
            # start — stop metering idle energy against the policy.
            state = (
                len(scheduler.running),
                sum(1 for j in scheduler.jobs.values() if j.terminal),
            )
            if state == previous_state and state[0] == 0:
                stalled_hours += 1
                if stalled_hours >= 24:
                    break
            else:
                stalled_hours = 0
            previous_state = state

    # Local import: descriptive analytics depends on the software package,
    # so importing it at module scope would create a cycle.
    from repro.analytics.descriptive.scheduling_metrics import scheduling_report

    jobs = list(scheduler.jobs.values())
    completed = [j for j in jobs if j.state is JobState.COMPLETED]
    ends = [j.end_time for j in jobs if j.end_time is not None]
    makespan = (max(ends) - first) if ends else 0.0
    finished = [j for j in jobs if j.terminal]
    try:
        qos = scheduling_report(finished)
    except InsufficientDataError:
        qos = None

    # Mean utilization over the active span.
    busy_node_seconds = sum(
        (j.runtime or 0.0) * j.nodes for j in finished
    )
    span = max(makespan, tick)
    utilization = min(busy_node_seconds / (span * system.node_count), 1.0)

    return ReplayResult(
        policy_name=getattr(policy, "name", type(policy).__name__),
        completed=len(completed),
        total=len(jobs),
        utilization=utilization,
        makespan_s=makespan,
        it_energy_kwh=energy["joules"] / 3.6e6,
        qos=qos,
    )


def compare_policies(
    requests: Sequence[JobRequest],
    policies: Mapping[str, SchedulingPolicy],
    key: Callable[[ReplayResult], float] = lambda r: r.makespan_s,
    **replay_kwargs,
) -> List[ReplayResult]:
    """Replay the trace under every policy; results sorted best-first by
    ``key`` (default: makespan ascending)."""
    results = []
    for name, policy in policies.items():
        result = replay(requests, policy, **replay_kwargs)
        # Preserve the mapping's label over the policy's class name.
        results.append(ReplayResult(**{**result.__dict__, "policy_name": name}))
    results.sort(key=key)
    return results
