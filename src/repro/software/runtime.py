"""Node-level runtime system (GEOPM/EAR-class hook).

The :class:`NodeRuntime` runs a periodic per-node control loop that feeds a
pluggable governor with the node's live counters and applies the frequency
decision it returns.  The governors themselves — reactive and proactive
DVFS policies — live in :mod:`repro.analytics.prescriptive.dvfs`; this
module is only the actuation vehicle, mirroring how GEOPM [11] separates
its agent algorithms from the runtime infrastructure.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol

from repro.cluster.node import ComputeNode
from repro.cluster.system import HPCSystem
from repro.simulation.engine import PeriodicHandle, Simulator
from repro.simulation.trace import TraceLog

__all__ = ["FrequencyGovernor", "NodeRuntime"]


class FrequencyGovernor(Protocol):
    """Decides a node's next frequency from its current counters.

    Implementations return a frequency from the node's DVFS ladder, or
    ``None`` to leave the frequency unchanged.
    """

    def decide(self, node: ComputeNode, counters: Dict[str, float], now: float) -> Optional[float]:
        ...


class NodeRuntime:
    """Periodic per-node governor loop over a set of nodes."""

    def __init__(
        self,
        system: HPCSystem,
        governor: FrequencyGovernor,
        period: float = 120.0,
        name: str = "runtime",
    ):
        self.system = system
        self.governor = governor
        self.period = period
        self.name = name
        self.trace: Optional[TraceLog] = None
        self.decisions = 0
        self.changes = 0
        self._handle: Optional[PeriodicHandle] = None

    def attach(self, sim: Simulator, trace: Optional[TraceLog] = None) -> None:
        self.trace = trace
        self._handle = sim.schedule_periodic(
            self.period, lambda s: self.step(s.now), start_delay=self.period,
            label=f"{self.name}:tick", priority=3,
        )

    def detach(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def step(self, now: float) -> int:
        """Run one governor pass over all healthy nodes; returns changes."""
        changed = 0
        for node in self.system.nodes:
            if not node.up:
                continue
            decision = self.governor.decide(node, node.counters(), now)
            self.decisions += 1
            if decision is not None and decision != node.frequency_ghz:
                node.set_frequency(decision)
                changed += 1
                if self.trace is not None:
                    self.trace.emit(
                        now, f"{self.name}.{node.name}", "dvfs_change",
                        freq=decision, job_id=node.job_id,
                    )
        self.changes += changed
        return changed
