"""OS/kernel noise injection.

System daemons, kernel ticks and stray services steal cycles from HPC
applications; at scale this "OS noise" measurably degrades tightly-coupled
jobs (Ferreira et al. [57]).  The injector gives a configurable subset of
nodes an elevated noise level, which (a) reduces their progress rate and
(b) raises their context-switch counter — the observable that the
diagnostic detector in :mod:`repro.analytics.diagnostic.noise` keys on.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cluster.node import ComputeNode
from repro.cluster.system import HPCSystem
from repro.simulation.engine import PeriodicHandle, Simulator
from repro.simulation.trace import TraceLog

__all__ = ["OsNoiseInjector"]


class OsNoiseInjector:
    """Installs baseline and pathological OS noise on cluster nodes.

    Parameters
    ----------
    baseline:
        Noise fraction every node carries (healthy systems sit ~0.1-0.5 %).
    noisy_fraction:
        Fraction of nodes afflicted with a misconfigured daemon.
    noisy_level:
        Noise fraction on afflicted nodes.
    jitter_period:
        How often noise levels fluctuate around their mean.
    """

    def __init__(
        self,
        system: HPCSystem,
        rng: np.random.Generator,
        baseline: float = 0.002,
        noisy_fraction: float = 0.0,
        noisy_level: float = 0.08,
        jitter_period: float = 300.0,
    ):
        self.system = system
        self.rng = rng
        self.baseline = baseline
        self.noisy_level = noisy_level
        self.jitter_period = jitter_period
        count = max(int(round(noisy_fraction * len(system.nodes))), 0)
        idx = rng.choice(len(system.nodes), size=count, replace=False) if count else []
        self.noisy_nodes: List[str] = sorted(system.nodes[int(i)].name for i in np.atleast_1d(idx))
        self._handle: Optional[PeriodicHandle] = None

    def attach(self, sim: Simulator, trace: Optional[TraceLog] = None) -> None:
        if trace is not None:
            for name in self.noisy_nodes:
                trace.emit(sim.now, f"os_noise.{name}", "noise_source", level=self.noisy_level)
        self._apply()
        self._handle = sim.schedule_periodic(
            self.jitter_period, lambda s: self._apply(), label="os_noise", priority=4
        )

    def detach(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _apply(self) -> None:
        noisy = set(self.noisy_nodes)
        for node in self.system.nodes:
            mean = self.noisy_level if node.name in noisy else self.baseline
            # Multiplicative jitter keeps noise positive and mean-centred.
            node.os_noise = float(
                np.clip(mean * self.rng.lognormal(0.0, 0.25), 0.0, 0.5)
            )

    def ground_truth(self) -> Dict[str, bool]:
        """``{node_name: is_noisy}`` for detector scoring."""
        noisy = set(self.noisy_nodes)
        return {node.name: node.name in noisy for node in self.system.nodes}
