"""Synthetic site-power traces at large-facility scale.

The LLNL utility-notification use case (Section V-C, [72]) operates on the
historic power trace of a ~30 MW site: smooth aggregate consumption with
strong daily/weekly structure, plus spike patterns from large-job starts
and facility events.  Our node-granular simulator reproduces a *small*
site, where individual job steps dominate and aggregate smoothness never
emerges — so, per the substitution rule, this generator produces the
large-site trace directly from its statistical structure:

* base load plus a trapezoidal working-hours cycle (harmonically rich,
  like real campus loads),
* a weekly factor (quiet weekends),
* an Ornstein-Uhlenbeck noise term for weather/load wander,
* **recurring spike patterns**: large jobs that start at preferred hours
  (e.g. the nightly batch window), producing the learnable >750 kW ramps
  the LLNL team identified with Fourier analysis.

The trace exercises exactly the code path of the published use case:
:class:`~repro.analytics.predictive.fourier.FourierForecaster` +
:func:`~repro.analytics.predictive.fourier.detect_ramps`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SpikePattern", "SitePowerTraceGenerator"]

DAY = 86_400.0
WEEK = 7 * DAY


@dataclass(frozen=True)
class SpikePattern:
    """A recurring large-load event.

    Attributes
    ----------
    hour:
        Preferred start hour-of-day (events recur near this hour).
    magnitude_w:
        Power added while the event runs.
    duration_s:
        How long the load persists.
    probability:
        Chance the event fires on any given day.
    jitter_s:
        Std-dev of the start-time jitter around the preferred hour.
    weekdays_only:
        Restrict the pattern to Monday-Friday.
    """

    hour: float
    magnitude_w: float
    duration_s: float
    probability: float = 1.0
    jitter_s: float = 900.0
    weekdays_only: bool = False


class SitePowerTraceGenerator:
    """Generates (times, watts) site-power traces with learnable structure.

    Parameters
    ----------
    rng:
        Seeded generator; the trace is reproducible.
    base_w:
        Always-on load.
    diurnal_amp_w:
        Peak-to-trough amplitude of the working-hours cycle.
    weekend_factor:
        Multiplier on the diurnal component during weekends.
    noise_sigma_w / noise_tau_s:
        OU noise parameters.
    patterns:
        Recurring spike patterns; defaults model a morning load rise and a
        nightly batch-window start — the kind of repeated >threshold ramps
        LLNL's Fourier analysis isolates.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        base_w: float = 22e6,
        diurnal_amp_w: float = 5e6,
        weekend_factor: float = 0.4,
        noise_sigma_w: float = 0.4e6,
        noise_tau_s: float = 4 * 3600.0,
        patterns: Optional[List[SpikePattern]] = None,
    ):
        if base_w <= 0:
            raise ConfigurationError("base_w must be positive")
        self.rng = rng
        self.base_w = base_w
        self.diurnal_amp_w = diurnal_amp_w
        self.weekend_factor = weekend_factor
        self.noise_sigma_w = noise_sigma_w
        self.noise_tau_s = noise_tau_s
        self.patterns = patterns if patterns is not None else [
            SpikePattern(hour=21.0, magnitude_w=1.6e6, duration_s=4 * 3600.0,
                         probability=0.9, jitter_s=600.0),
            SpikePattern(hour=9.5, magnitude_w=1.2e6, duration_s=2 * 3600.0,
                         probability=0.8, jitter_s=900.0, weekdays_only=True),
        ]

    # ------------------------------------------------------------------
    def _diurnal(self, times: np.ndarray) -> np.ndarray:
        """Trapezoidal working-hours shape: ramps 7-9 h, plateau, 18-21 h."""
        hours = (times % DAY) / 3600.0
        shape = np.zeros_like(hours)
        shape = np.where((hours >= 7) & (hours < 9), (hours - 7) / 2.0, shape)
        shape = np.where((hours >= 9) & (hours < 18), 1.0, shape)
        shape = np.where((hours >= 18) & (hours < 21), (21 - hours) / 3.0, shape)
        weekday = (times % WEEK) / DAY
        factor = np.where(weekday >= 5.0, self.weekend_factor, 1.0)
        return self.diurnal_amp_w * shape * factor

    def _noise(self, times: np.ndarray) -> np.ndarray:
        dt = float(np.median(np.diff(times))) if times.size > 1 else 60.0
        phi = math.exp(-dt / self.noise_tau_s)
        innovation_sd = self.noise_sigma_w * math.sqrt(1.0 - phi * phi)
        noise = np.empty(times.size)
        noise[0] = self.rng.normal(0.0, self.noise_sigma_w)
        shocks = self.rng.normal(0.0, innovation_sd, times.size - 1)
        for i in range(1, times.size):
            noise[i] = phi * noise[i - 1] + shocks[i - 1]
        return noise

    def _spikes(self, times: np.ndarray) -> Tuple[np.ndarray, List[Tuple[float, float]]]:
        """Spike load per sample plus the ground-truth (start, magnitude) list."""
        load = np.zeros(times.size)
        events: List[Tuple[float, float]] = []
        first_day = int(times[0] // DAY)
        last_day = int(times[-1] // DAY)
        for day in range(first_day, last_day + 1):
            weekday = (day * DAY % WEEK) / DAY
            for pattern in self.patterns:
                if pattern.weekdays_only and weekday >= 5.0:
                    continue
                if self.rng.random() > pattern.probability:
                    continue
                start = day * DAY + pattern.hour * 3600.0 + self.rng.normal(0, pattern.jitter_s)
                end = start + pattern.duration_s
                mask = (times >= start) & (times < end)
                if mask.any():
                    load[mask] += pattern.magnitude_w
                    events.append((start, pattern.magnitude_w))
        return load, events

    # ------------------------------------------------------------------
    def generate(
        self, days: float, step_s: float = 300.0, start: float = 0.0
    ) -> Tuple[np.ndarray, np.ndarray, List[Tuple[float, float]]]:
        """Generate the trace.

        Returns ``(times, watts, events)`` where ``events`` is the ground
        truth list of spike starts (time, magnitude) for scoring ramp
        notifications.
        """
        if days <= 0 or step_s <= 0:
            raise ConfigurationError("days and step_s must be positive")
        times = np.arange(start, start + days * DAY, step_s)
        spikes, events = self._spikes(times)
        watts = self.base_w + self._diurnal(times) + self._noise(times) + spikes
        return times, watts, events
