"""Cooling plant: technologies, loops and the technology-switching knob.

The plant serves the IT heat load using one of three technologies —
mechanical chillers, evaporative cooling towers or dry (free) coolers — per
cooling loop.  The *mode* knob and the *supply setpoint* knob are exactly
the control interfaces the paper's prescriptive infrastructure ODA examples
actuate: switching between types of cooling (Jiang et al. [12]) and tuning
inlet water temperature (Conficoni et al. [18], Kjærgaard et al. [37]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, ControlError
from repro.facility.components import Chiller, CoolingTower, DryCooler, Pump
from repro.facility.weather import WeatherSample

__all__ = ["CoolingMode", "CoolingLoop", "CoolingPlant"]


class CoolingMode(Enum):
    """Cooling technology in use for a loop."""

    CHILLER = "chiller"
    TOWER = "tower"
    FREE = "free"
    AUTO = "auto"  # plant picks the cheapest feasible technology


@dataclass
class CoolingLoop:
    """One hydraulic loop serving a share of the IT heat load.

    Attributes
    ----------
    name:
        Loop identifier used in metric paths.
    supply_setpoint_c:
        Desired supply-water temperature; a warm-water loop runs at 35-45 C,
        a chilled-water loop at 14-18 C.  Raising the setpoint widens the
        window where towers and free cooling are feasible — the core lever
        of energy-aware cooling ODA.
    mode:
        Selected technology (or AUTO).
    """

    name: str
    supply_setpoint_c: float = 16.0
    mode: CoolingMode = CoolingMode.AUTO
    chiller: Chiller = field(default_factory=lambda: Chiller(name="chiller"))
    tower: CoolingTower = field(default_factory=lambda: CoolingTower(name="tower"))
    dry_cooler: DryCooler = field(default_factory=lambda: DryCooler(name="drycooler"))
    pump: Pump = field(default_factory=lambda: Pump(name="pump"))
    min_setpoint_c: float = 10.0
    max_setpoint_c: float = 50.0

    # State from the last update.
    active_mode: CoolingMode = field(default=CoolingMode.CHILLER, init=False)
    supply_temp_c: float = field(default=16.0, init=False)
    heat_load_w: float = field(default=0.0, init=False)
    cooling_power_w: float = field(default=0.0, init=False)

    def set_setpoint(self, setpoint_c: float) -> None:
        """Actuate the supply-temperature knob (prescriptive interface)."""
        if not self.min_setpoint_c <= setpoint_c <= self.max_setpoint_c:
            raise ControlError(
                f"loop {self.name}: setpoint {setpoint_c} outside "
                f"[{self.min_setpoint_c}, {self.max_setpoint_c}]"
            )
        self.supply_setpoint_c = setpoint_c
        self.chiller.supply_setpoint_c = setpoint_c

    def set_mode(self, mode: CoolingMode) -> None:
        """Actuate the technology-switching knob (prescriptive interface)."""
        self.mode = mode

    # ------------------------------------------------------------------
    def _feasible_modes(self, weather: WeatherSample) -> List[CoolingMode]:
        feasible = [CoolingMode.CHILLER]
        if (
            self.tower.enabled
            and self.tower.supply_temp_c(weather.wetbulb_c) <= self.supply_setpoint_c
        ):
            feasible.append(CoolingMode.TOWER)
        if self.dry_cooler.can_serve(weather.drybulb_c, self.supply_setpoint_c):
            feasible.append(CoolingMode.FREE)
        return feasible

    def _mode_power(
        self, mode: CoolingMode, heat_load_w: float, weather: WeatherSample, dt: float
    ) -> float:
        if mode is CoolingMode.CHILLER:
            return self.chiller.update(heat_load_w, weather.drybulb_c, dt)
        if mode is CoolingMode.TOWER:
            return self.tower.update(heat_load_w, weather.wetbulb_c, dt)
        if mode is CoolingMode.FREE:
            return self.dry_cooler.update(heat_load_w, weather.drybulb_c, dt)
        raise ConfigurationError(f"unexpected mode {mode}")

    def _estimate_power(
        self, mode: CoolingMode, heat_load_w: float, weather: WeatherSample
    ) -> float:
        """Side-effect-free power estimate used for AUTO dispatch."""
        if mode is CoolingMode.CHILLER:
            saved = self.chiller.load_fraction
            self.chiller.load_fraction = min(heat_load_w / self.chiller.capacity_w, 1.0)
            power = heat_load_w / self.chiller.cop(weather.drybulb_c)
            self.chiller.load_fraction = saved
            return power
        if mode is CoolingMode.TOWER:
            lf = min(heat_load_w / self.tower.capacity_w, 1.0)
            return self.tower.fan_power_max_w * min(lf / max(self.tower.health, 0.1), 1.5) ** 3
        if mode is CoolingMode.FREE:
            lf = min(heat_load_w / self.dry_cooler.capacity_w, 1.0)
            return self.dry_cooler.fan_power_max_w * (lf / max(self.dry_cooler.health, 0.1)) ** 2
        raise ConfigurationError(f"unexpected mode {mode}")

    def update(self, heat_load_w: float, weather: WeatherSample, dt: float) -> float:
        """Serve the heat load for ``dt`` seconds; returns cooling power (W).

        In AUTO mode the cheapest feasible technology is chosen each step;
        otherwise the selected mode is used, falling back to the chiller if
        the selection is infeasible under current weather (a tower asked to
        deliver water colder than the wet-bulb floor cannot comply).
        """
        self.heat_load_w = heat_load_w
        feasible = self._feasible_modes(weather)
        if self.mode is CoolingMode.AUTO:
            chosen = min(
                feasible, key=lambda m: self._estimate_power(m, heat_load_w, weather)
            )
        elif self.mode in feasible:
            chosen = self.mode
        else:
            chosen = CoolingMode.CHILLER

        # Idle the technologies not chosen so their sensors read zero.
        for mode in (CoolingMode.CHILLER, CoolingMode.TOWER, CoolingMode.FREE):
            if mode is not chosen:
                self._mode_power(mode, 0.0, weather, dt)
        technology_power = self._mode_power(chosen, heat_load_w, weather, dt)

        # Pump flow scales with heat load at a fixed design delta-T of 10 K;
        # water heat capacity ~4186 J/(kg K), 1 kg/L.
        flow_ls = heat_load_w / (4186.0 * 10.0) if heat_load_w > 0 else 0.0
        pump_power = self.pump.update(flow_ls, dt)

        self.active_mode = chosen
        if chosen is CoolingMode.CHILLER:
            self.supply_temp_c = self.supply_setpoint_c
        elif chosen is CoolingMode.TOWER:
            self.supply_temp_c = min(
                self.tower.supply_temp_c(weather.wetbulb_c), self.supply_setpoint_c
            )
        else:
            self.supply_temp_c = min(
                self.dry_cooler.supply_temp_c(weather.drybulb_c), self.supply_setpoint_c
            )
        self.cooling_power_w = technology_power + pump_power
        return self.cooling_power_w

    def sensors(self) -> Dict[str, float]:
        """Loop-level sensor readings (component sensors are separate)."""
        return {
            "supply_temp": self.supply_temp_c,
            "setpoint": self.supply_setpoint_c,
            "heat_load": self.heat_load_w,
            "cooling_power": self.cooling_power_w,
            "mode": float(
                [CoolingMode.CHILLER, CoolingMode.TOWER, CoolingMode.FREE].index(
                    self.active_mode
                )
            ),
        }


class CoolingPlant:
    """Set of cooling loops plus plant-level accounting."""

    def __init__(self, loops: Optional[List[CoolingLoop]] = None):
        self.loops: List[CoolingLoop] = loops or [CoolingLoop(name="loop0")]
        names = [loop.name for loop in self.loops]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate loop names: {names}")
        self.cooling_power_w = 0.0

    def loop(self, name: str) -> CoolingLoop:
        for candidate in self.loops:
            if candidate.name == name:
                return candidate
        raise ConfigurationError(f"no cooling loop named {name!r}")

    def update(self, heat_load_w: float, weather: WeatherSample, dt: float) -> float:
        """Distribute the heat load evenly across loops; returns plant power."""
        if not self.loops:
            raise ConfigurationError("cooling plant has no loops")
        share = heat_load_w / len(self.loops)
        self.cooling_power_w = sum(
            loop.update(share, weather, dt) for loop in self.loops
        )
        return self.cooling_power_w
