"""Infrastructure fault injection.

Diagnostic infrastructure ODA (anomaly detection in pumps and power
supplies [54], crisis fingerprinting [38], stress-test-aided detection
[39]) needs faults to detect.  The :class:`FaultInjector` schedules
degradations on infrastructure components via the discrete-event simulator
and records ground truth in the trace log so benchmarks can score
detectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional

import numpy as np

from repro.facility.components import InfrastructureComponent
from repro.simulation.engine import Simulator
from repro.simulation.trace import TraceLog

__all__ = ["FaultKind", "InjectedFault", "FaultInjector"]


class FaultKind(Enum):
    """Failure modes for infrastructure machinery."""

    DEGRADATION = "degradation"   # gradual efficiency loss (fouling, wear)
    OUTAGE = "outage"             # component disabled outright
    SENSOR_DRIFT = "sensor_drift" # telemetry lies; physics unaffected


@dataclass
class InjectedFault:
    """Ground-truth record of one injected fault."""

    component: str
    kind: FaultKind
    start: float
    duration: float
    severity: float

    @property
    def end(self) -> float:
        return self.start + self.duration

    def overlaps(self, since: float, until: float) -> bool:
        """Whether the fault is active anywhere in ``[since, until]``."""
        return self.start <= until and self.end >= since


class FaultInjector:
    """Schedules faults on components and records ground truth.

    Sensor drift is implemented by installing a multiplicative bias the
    owning facility applies when exporting the component's sensors; the
    injector only tracks the bias value here.
    """

    def __init__(self, sim: Simulator, trace: TraceLog, rng: Optional[np.random.Generator] = None):
        self.sim = sim
        self.trace = trace
        self.rng = rng or np.random.default_rng(0)
        self.injected: List[InjectedFault] = []
        self._drift: dict[str, float] = {}

    # ------------------------------------------------------------------
    def sensor_bias(self, component_name: str) -> float:
        """Current multiplicative sensor bias for a component (1.0 = none)."""
        return self._drift.get(component_name, 1.0)

    # ------------------------------------------------------------------
    def inject(
        self,
        component: InfrastructureComponent,
        kind: FaultKind,
        start: float,
        duration: float,
        severity: float = 0.5,
    ) -> InjectedFault:
        """Schedule a fault.

        ``severity`` is in ``(0, 1]``: for DEGRADATION it is the health
        multiplier applied at onset; for SENSOR_DRIFT it sets the bias to
        ``1 + severity``; OUTAGE ignores it.
        """
        fault = InjectedFault(component.name, kind, start, duration, severity)
        self.injected.append(fault)

        def onset(sim: Simulator) -> None:
            if kind is FaultKind.DEGRADATION:
                component.degrade(max(severity, 1e-3))
            elif kind is FaultKind.OUTAGE:
                component.enabled = False
            elif kind is FaultKind.SENSOR_DRIFT:
                self._drift[component.name] = 1.0 + severity
            self.trace.emit(
                sim.now, f"faults.{component.name}", "fault_onset",
                fault_kind=kind.value, severity=severity, duration=duration,
            )

        def clear(sim: Simulator) -> None:
            if kind is FaultKind.DEGRADATION:
                component.repair()
            elif kind is FaultKind.OUTAGE:
                component.enabled = True
            elif kind is FaultKind.SENSOR_DRIFT:
                self._drift.pop(component.name, None)
            self.trace.emit(
                sim.now, f"faults.{component.name}", "fault_clear", fault_kind=kind.value
            )

        self.sim.schedule_at(start, onset, label=f"fault:{component.name}")
        self.sim.schedule_at(start + duration, clear, label=f"fault_clear:{component.name}")
        return fault

    def inject_random(
        self,
        components: List[InfrastructureComponent],
        horizon: float,
        rate_per_day: float = 0.5,
        mean_duration: float = 4 * 3600.0,
    ) -> List[InjectedFault]:
        """Poisson-process fault injection over ``[now, now+horizon]``."""
        day = 86_400.0
        expected = rate_per_day * horizon / day
        count = int(self.rng.poisson(expected))
        faults = []
        for _ in range(count):
            component = components[int(self.rng.integers(len(components)))]
            kind = [FaultKind.DEGRADATION, FaultKind.OUTAGE, FaultKind.SENSOR_DRIFT][
                int(self.rng.integers(3))
            ]
            start = self.sim.now + float(self.rng.uniform(0, horizon))
            duration = float(self.rng.exponential(mean_duration))
            severity = float(self.rng.uniform(0.3, 0.8))
            faults.append(self.inject(component, kind, start, duration, severity))
        return faults

    def active_at(self, time: float) -> List[InjectedFault]:
        """Ground-truth faults active at ``time``."""
        return [f for f in self.injected if f.start <= time <= f.end]
