"""Synthetic weather model.

Cooling efficiency in real data centers is dominated by ambient conditions:
dry-bulb temperature gates free cooling, wet-bulb temperature sets the floor
for evaporative cooling towers.  The model combines seasonal and diurnal
sinusoids with a slowly-varying AR(1) weather-front term, which gives the
predictive-analytics benchmarks realistic seasonality and autocorrelation to
learn.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["WeatherSample", "WeatherModel", "DAY", "YEAR"]

#: Seconds per day / per (simplified 360-day) year.
DAY = 86_400.0
YEAR = 360 * DAY


@dataclass(frozen=True)
class WeatherSample:
    """Ambient conditions at one instant (temperatures in Celsius)."""

    drybulb_c: float
    wetbulb_c: float
    humidity: float  # relative humidity fraction in [0, 1]


class WeatherModel:
    """Deterministic-plus-AR(1) ambient weather generator.

    Parameters
    ----------
    rng:
        Generator for the stochastic front term.
    mean_c:
        Annual-mean dry-bulb temperature.
    seasonal_amp_c / diurnal_amp_c:
        Amplitudes of the yearly and daily cycles.
    front_sigma_c:
        Std-dev of the AR(1) weather-front perturbation.
    humidity_mean:
        Mean relative humidity (drives the wet-bulb depression).

    The model is advanced by calling :meth:`sample` with non-decreasing
    times; the AR(1) state uses the actual elapsed interval so irregular
    sampling stays consistent.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        mean_c: float = 12.0,
        seasonal_amp_c: float = 10.0,
        diurnal_amp_c: float = 5.0,
        front_sigma_c: float = 3.0,
        front_tau_s: float = 2 * DAY,
        humidity_mean: float = 0.6,
    ):
        self._rng = rng
        self.mean_c = mean_c
        self.seasonal_amp_c = seasonal_amp_c
        self.diurnal_amp_c = diurnal_amp_c
        self.front_sigma_c = front_sigma_c
        self.front_tau_s = front_tau_s
        self.humidity_mean = humidity_mean
        self._front = 0.0
        self._last_time: float | None = None

    def deterministic_drybulb(self, time: float) -> float:
        """The noise-free component of the dry-bulb temperature."""
        seasonal = self.seasonal_amp_c * math.sin(2 * math.pi * (time / YEAR - 0.25))
        diurnal = self.diurnal_amp_c * math.sin(2 * math.pi * (time / DAY - 0.25))
        return self.mean_c + seasonal + diurnal

    def _advance_front(self, time: float) -> None:
        if self._last_time is None:
            self._front = float(self._rng.normal(0.0, self.front_sigma_c))
        else:
            dt = max(time - self._last_time, 0.0)
            # Exact AR(1)/Ornstein-Uhlenbeck discretisation for step dt.
            phi = math.exp(-dt / self.front_tau_s)
            noise_sd = self.front_sigma_c * math.sqrt(max(1.0 - phi * phi, 0.0))
            self._front = phi * self._front + float(self._rng.normal(0.0, noise_sd))
        self._last_time = time

    def sample(self, time: float) -> WeatherSample:
        """Ambient conditions at ``time`` (advances the stochastic state)."""
        self._advance_front(time)
        drybulb = self.deterministic_drybulb(time) + self._front
        # Humidity wanders mildly with the front; clamp to a physical range.
        humidity = min(max(self.humidity_mean - 0.01 * self._front, 0.15), 0.98)
        # Wet-bulb depression shrinks as humidity rises (simple psychrometric
        # approximation adequate for COP modelling).
        depression = (1.0 - humidity) * (8.0 + 0.25 * max(drybulb, 0.0))
        wetbulb = drybulb - depression
        return WeatherSample(drybulb_c=drybulb, wetbulb_c=wetbulb, humidity=humidity)
