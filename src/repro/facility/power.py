"""Power-distribution chain: utility feed -> transformer -> UPS -> PDUs.

Models the electrical path and its conversion losses so that facility-level
power (the quantity the PUE and the LLNL utility-notification use case are
computed from) is physically consistent: every watt the IT equipment and the
cooling plant draw is pulled through lossy conversion stages up to the
utility meter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.facility.components import PowerConversion

__all__ = ["PowerDistribution"]


@dataclass
class PowerDistribution:
    """Two-stage conversion chain with per-stage loss accounting.

    Attributes
    ----------
    transformer:
        Medium-voltage utility transformer (everything flows through it).
    ups:
        UPS protecting the IT load only; cooling machinery is fed directly
        from the transformer, as in most real plants.
    pdus:
        Rack-level PDUs splitting the IT feed.
    """

    transformer: PowerConversion = field(
        default_factory=lambda: PowerConversion(
            name="transformer", capacity_w=10_000_000.0, efficiency_peak=0.985,
            fixed_loss_w=8_000.0,
        )
    )
    ups: PowerConversion = field(
        default_factory=lambda: PowerConversion(
            name="ups", capacity_w=6_000_000.0, efficiency_peak=0.95,
            fixed_loss_w=6_000.0,
        )
    )
    pdus: List[PowerConversion] = field(default_factory=list)

    # State from the last update.
    it_power_w: float = field(default=0.0, init=False)
    cooling_power_w: float = field(default=0.0, init=False)
    loss_w: float = field(default=0.0, init=False)
    site_power_w: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if not self.pdus:
            self.pdus = [
                PowerConversion(
                    name=f"pdu{i}", capacity_w=1_500_000.0,
                    efficiency_peak=0.97, fixed_loss_w=1_000.0,
                )
                for i in range(4)
            ]

    def update(self, it_power_w: float, cooling_power_w: float, dt: float) -> float:
        """Propagate loads up the chain; returns total site power in watts."""
        if it_power_w < 0 or cooling_power_w < 0:
            raise ConfigurationError("power loads must be non-negative")
        self.it_power_w = it_power_w
        self.cooling_power_w = cooling_power_w

        pdu_share = it_power_w / len(self.pdus)
        pdu_loss = sum(pdu.update(pdu_share, dt) for pdu in self.pdus)
        ups_loss = self.ups.update(it_power_w + pdu_loss, dt)
        through_transformer = it_power_w + pdu_loss + ups_loss + cooling_power_w
        transformer_loss = self.transformer.update(through_transformer, dt)

        self.loss_w = pdu_loss + ups_loss + transformer_loss
        self.site_power_w = it_power_w + cooling_power_w + self.loss_w
        return self.site_power_w

    def sensors(self) -> Dict[str, float]:
        """Chain-level sensor readings."""
        return {
            "site_power": self.site_power_w,
            "it_power": self.it_power_w,
            "cooling_power": self.cooling_power_w,
            "loss_power": self.loss_w,
        }
