"""Physical models of building-infrastructure components.

Each component exposes:

* a steady-state physics update (given load and ambient conditions),
* a ``health`` factor in ``(0, 1]`` that fault injection degrades,
* a ``sensors()`` mapping feeding the telemetry pipeline.

The models are deliberately first-order — part-load efficiency curves, cube
laws, approach temperatures — but preserve the qualitative behaviour the
paper's infrastructure ODA use cases exploit: COP falls with ambient
temperature and rises with warm-water setpoints, free cooling is only
available under a dry-bulb ceiling, and degraded components show up as
correlated drifts in their sensor signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError

__all__ = [
    "InfrastructureComponent",
    "Chiller",
    "CoolingTower",
    "DryCooler",
    "Pump",
    "HeatExchanger",
    "PowerConversion",
]


@dataclass
class InfrastructureComponent:
    """Base class: identity, health and bookkeeping shared by all models."""

    name: str
    health: float = 1.0
    enabled: bool = True
    energy_j: float = field(default=0.0, init=False)
    _power_w: float = field(default=0.0, init=False)

    def degrade(self, factor: float) -> None:
        """Multiply health by ``factor`` (fault injection hook)."""
        if not 0.0 < factor <= 1.0:
            raise ConfigurationError(f"degrade factor must be in (0, 1], got {factor}")
        self.health *= factor

    def repair(self) -> None:
        """Restore full health."""
        self.health = 1.0

    @property
    def power_w(self) -> float:
        """Electric power drawn at the last update."""
        return self._power_w

    def account(self, power_w: float, dt: float) -> None:
        """Record power draw over an interval (integrates energy)."""
        self._power_w = power_w
        self.energy_j += power_w * dt

    def sensors(self) -> Dict[str, float]:
        """Instantaneous sensor readings (subclasses extend)."""
        return {"power": self._power_w, "health": self.health}


@dataclass
class Chiller(InfrastructureComponent):
    """Mechanical (compressor) chiller.

    COP model: nominal COP scaled by a part-load curve that peaks around 80%
    load, derated linearly as condenser-side ambient rises above 15 degC and
    improved as the chilled-water setpoint rises (the physics behind
    warm-water-cooling economics, cf. Conficoni et al. [18]).
    """

    capacity_w: float = 2_000_000.0
    cop_nominal: float = 5.0
    supply_setpoint_c: float = 16.0
    ambient_derate_per_c: float = 0.06
    setpoint_gain_per_c: float = 0.12
    load_fraction: float = field(default=0.0, init=False)

    def cop(self, ambient_c: float) -> float:
        """Coefficient of performance at the current state."""
        lf = min(max(self.load_fraction, 0.05), 1.0)
        part_load = 1.0 - 0.35 * (lf - 0.8) ** 2  # peaks near 80 % load
        ambient_term = 1.0 - self.ambient_derate_per_c * max(ambient_c - 15.0, 0.0) / 5.0
        setpoint_term = 1.0 + self.setpoint_gain_per_c * (self.supply_setpoint_c - 16.0) / 4.0
        cop = self.cop_nominal * part_load * max(ambient_term, 0.2) * max(setpoint_term, 0.3)
        return max(cop * self.health, 0.5)

    def update(self, heat_load_w: float, ambient_c: float, dt: float) -> float:
        """Remove ``heat_load_w`` of heat; returns electric power drawn."""
        if not self.enabled or heat_load_w <= 0.0:
            self.load_fraction = 0.0
            self.account(0.0, dt)
            return 0.0
        self.load_fraction = min(heat_load_w / self.capacity_w, 1.0)
        power = heat_load_w / self.cop(ambient_c)
        self.account(power, dt)
        return power

    def sensors(self) -> Dict[str, float]:
        base = super().sensors()
        base.update(
            {
                "load_fraction": self.load_fraction,
                "supply_temp": self.supply_setpoint_c,
                "cop": self.cop(20.0),
            }
        )
        return base


@dataclass
class CoolingTower(InfrastructureComponent):
    """Evaporative cooling tower.

    Delivers water at ``wetbulb + approach``; fan power follows a cube law
    on the required airflow fraction.  Degraded health raises the effective
    approach (fouling) and fan power (bearing wear).
    """

    capacity_w: float = 2_000_000.0
    approach_c: float = 4.0
    fan_power_max_w: float = 30_000.0
    load_fraction: float = field(default=0.0, init=False)

    def supply_temp_c(self, wetbulb_c: float) -> float:
        """Achievable supply water temperature at current health."""
        return wetbulb_c + self.approach_c / max(self.health, 0.1)

    def update(self, heat_load_w: float, wetbulb_c: float, dt: float) -> float:
        if not self.enabled or heat_load_w <= 0.0:
            self.load_fraction = 0.0
            self.account(0.0, dt)
            return 0.0
        self.load_fraction = min(heat_load_w / self.capacity_w, 1.0)
        airflow = self.load_fraction / max(self.health, 0.1)
        power = self.fan_power_max_w * min(airflow, 1.5) ** 3
        self.account(power, dt)
        return power

    def sensors(self) -> Dict[str, float]:
        base = super().sensors()
        base.update({"load_fraction": self.load_fraction, "approach": self.approach_c / max(self.health, 0.1)})
        return base


@dataclass
class DryCooler(InfrastructureComponent):
    """Dry (free) cooler: cheap fans, but bounded by the dry-bulb ambient.

    Usable only when ``drybulb + approach <= required supply temperature``;
    the cooling plant checks :meth:`can_serve` before dispatching load here.
    """

    capacity_w: float = 2_000_000.0
    approach_c: float = 6.0
    fan_power_max_w: float = 15_000.0
    load_fraction: float = field(default=0.0, init=False)

    def supply_temp_c(self, drybulb_c: float) -> float:
        return drybulb_c + self.approach_c / max(self.health, 0.1)

    def can_serve(self, drybulb_c: float, required_supply_c: float) -> bool:
        """Whether free cooling can hit the required supply temperature."""
        return self.enabled and self.supply_temp_c(drybulb_c) <= required_supply_c

    def update(self, heat_load_w: float, drybulb_c: float, dt: float) -> float:
        if not self.enabled or heat_load_w <= 0.0:
            self.load_fraction = 0.0
            self.account(0.0, dt)
            return 0.0
        self.load_fraction = min(heat_load_w / self.capacity_w, 1.0)
        power = self.fan_power_max_w * (self.load_fraction / max(self.health, 0.1)) ** 2
        self.account(power, dt)
        return power


@dataclass
class Pump(InfrastructureComponent):
    """Circulation pump; hydraulic power scales with the cube of flow."""

    rated_flow_ls: float = 100.0
    rated_power_w: float = 20_000.0
    flow_ls: float = field(default=0.0, init=False)

    def update(self, flow_ls: float, dt: float) -> float:
        if not self.enabled:
            self.flow_ls = 0.0
            self.account(0.0, dt)
            return 0.0
        self.flow_ls = flow_ls
        fraction = min(flow_ls / self.rated_flow_ls, 1.5)
        power = self.rated_power_w * fraction**3 / max(self.health, 0.1)
        self.account(power, dt)
        return power

    def sensors(self) -> Dict[str, float]:
        base = super().sensors()
        base["flow"] = self.flow_ls
        return base


@dataclass
class HeatExchanger(InfrastructureComponent):
    """Counter-flow heat exchanger with a fixed effectiveness."""

    effectiveness: float = 0.9

    def secondary_temp_c(self, primary_c: float, secondary_in_c: float) -> float:
        """Outlet temperature on the secondary side."""
        eff = self.effectiveness * self.health
        return secondary_in_c + eff * (primary_c - secondary_in_c)


@dataclass
class PowerConversion(InfrastructureComponent):
    """Transformer / UPS / PDU stage with a load-dependent efficiency.

    Efficiency curve: poor at very low load (fixed losses dominate), flat
    near ``efficiency_peak`` above ~30 % load — the standard double-
    conversion UPS shape.
    """

    capacity_w: float = 5_000_000.0
    efficiency_peak: float = 0.96
    fixed_loss_w: float = 5_000.0
    throughput_w: float = field(default=0.0, init=False)

    def update(self, load_w: float, dt: float) -> float:
        """Pass ``load_w`` downstream; returns total electric loss in watts."""
        if not self.enabled:
            self.account(0.0, dt)
            return 0.0
        self.throughput_w = load_w
        proportional_loss = load_w * (1.0 - self.efficiency_peak * self.health)
        loss = self.fixed_loss_w + proportional_loss
        self.account(loss, dt)
        return loss

    @property
    def load_fraction(self) -> float:
        return self.throughput_w / self.capacity_w

    def sensors(self) -> Dict[str, float]:
        base = super().sensors()
        base.update({"throughput": self.throughput_w, "load_fraction": self.load_fraction})
        return base
