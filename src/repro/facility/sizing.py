"""Facility sizing: build plant and distribution matched to an IT load.

Real plants are engineered around the machine they host; a chiller sized
for 2 MW serving a 7 kW testbed would dominate the PUE with fixed losses.
This factory applies standard design ratios to an expected peak IT power so
simulations of any cluster size produce realistic efficiency figures
(PUE ~1.1 in free-cooling weather up to ~1.5 on chillers).
"""

from __future__ import annotations

from typing import List

from repro.facility.components import Chiller, CoolingTower, DryCooler, PowerConversion, Pump
from repro.facility.cooling import CoolingLoop, CoolingMode, CoolingPlant
from repro.facility.power import PowerDistribution

__all__ = ["scaled_cooling_plant", "scaled_distribution"]


def scaled_cooling_plant(
    peak_it_w: float,
    loops: int = 1,
    supply_setpoint_c: float = 18.0,
    mode: CoolingMode = CoolingMode.AUTO,
    headroom: float = 1.3,
) -> CoolingPlant:
    """Cooling plant sized for ``peak_it_w`` watts of IT heat.

    Design ratios: technology capacity = headroom x load share; tower fans
    ~1.5 % of capacity, dry-cooler fans ~0.8 %, pumps ~1 % at a 10 K design
    delta-T.
    """
    share = peak_it_w * headroom / loops
    loop_objs: List[CoolingLoop] = []
    for i in range(loops):
        loop = CoolingLoop(
            name=f"loop{i}",
            supply_setpoint_c=supply_setpoint_c,
            mode=mode,
            chiller=Chiller(name="chiller", capacity_w=share,
                            supply_setpoint_c=supply_setpoint_c),
            tower=CoolingTower(name="tower", capacity_w=share,
                               fan_power_max_w=0.015 * share),
            dry_cooler=DryCooler(name="drycooler", capacity_w=share,
                                 fan_power_max_w=0.008 * share),
            pump=Pump(name="pump",
                      rated_flow_ls=share / (4186.0 * 10.0),
                      rated_power_w=0.01 * share),
        )
        loop_objs.append(loop)
    return CoolingPlant(loop_objs)


def scaled_distribution(peak_it_w: float, pdus: int = 4) -> PowerDistribution:
    """Electrical chain sized for ``peak_it_w`` watts of IT load.

    Fixed losses follow typical fractions of nameplate capacity
    (transformer 0.2 %, UPS 0.15 %, PDU 0.03 %).
    """
    return PowerDistribution(
        transformer=PowerConversion(
            name="transformer", capacity_w=2.5 * peak_it_w,
            efficiency_peak=0.985, fixed_loss_w=0.002 * peak_it_w,
        ),
        ups=PowerConversion(
            name="ups", capacity_w=1.5 * peak_it_w,
            efficiency_peak=0.95, fixed_loss_w=0.0015 * peak_it_w,
        ),
        pdus=[
            PowerConversion(
                name=f"pdu{i}", capacity_w=1.5 * peak_it_w / pdus,
                efficiency_peak=0.97, fixed_loss_w=0.0003 * peak_it_w,
            )
            for i in range(pdus)
        ],
    )
