"""The facility aggregate: weather + cooling plant + power distribution.

This is the building-infrastructure pillar of the simulated data center.
It advances its physics on a periodic simulator tick, driven by the IT power
reported by the cluster, and exposes a telemetry source covering every
infrastructure sensor (the raw material of descriptive facility ODA:
PUE calculation [4], facility dashboards [1][7], data processing [8][58]).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.facility.components import InfrastructureComponent
from repro.facility.cooling import CoolingLoop, CoolingPlant
from repro.facility.faults import FaultInjector
from repro.facility.power import PowerDistribution
from repro.facility.weather import WeatherModel, WeatherSample
from repro.simulation.engine import PeriodicHandle, Simulator
from repro.simulation.trace import TraceLog
from repro.telemetry.collector import Sampler
from repro.telemetry.metric import MetricKind, MetricSpec, Unit

__all__ = ["Facility"]


class Facility:
    """Simulated building infrastructure.

    Parameters
    ----------
    name:
        Root of all facility metric paths (default ``"facility"``).
    weather:
        Ambient weather model.
    plant:
        Cooling plant (defaults to one AUTO loop).
    distribution:
        Electrical distribution chain.
    it_power_source:
        Callable returning the current IT power in watts; wired to the
        cluster by :class:`~repro.oda.system.DataCenter`.  Defaults to zero.
    tick:
        Physics update period in seconds.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        name: str = "facility",
        weather: Optional[WeatherModel] = None,
        plant: Optional[CoolingPlant] = None,
        distribution: Optional[PowerDistribution] = None,
        it_power_source: Optional[Callable[[], float]] = None,
        tick: float = 60.0,
        sensor_noise_floor_w: float = 0.0,
        sensor_noise_rel: float = 0.0,
    ):
        if tick <= 0:
            raise ConfigurationError("facility tick must be positive")
        self.name = name
        self.weather = weather or WeatherModel(rng)
        self.plant = plant or CoolingPlant()
        self.distribution = distribution or PowerDistribution()
        self.it_power_source = it_power_source or (lambda: 0.0)
        self.tick = tick
        # Optional measurement noise on power-like sensors: real plant
        # instrumentation has an absolute resolution floor, which is what
        # makes low-load fault signatures invisible without stress testing
        # (the Bortot et al. [39] rationale).
        self.sensor_noise_floor_w = sensor_noise_floor_w
        self.sensor_noise_rel = sensor_noise_rel
        # Derive the noise generator from the weather generator's *state*
        # without consuming a draw, so enabling noise never perturbs the
        # physics trajectory of an otherwise identical run.
        if sensor_noise_floor_w > 0 or sensor_noise_rel > 0:
            import zlib

            state_key = zlib.crc32(repr(rng.bit_generator.state).encode("utf-8"))
            self._noise_rng = np.random.default_rng(state_key)
        else:
            self._noise_rng = None
        self.trace: Optional[TraceLog] = None
        self.fault_injector: Optional[FaultInjector] = None

        self._last_weather = WeatherSample(12.0, 8.0, 0.6)
        self._last_update: Optional[float] = None
        self._handle: Optional[PeriodicHandle] = None
        self.it_energy_j = 0.0
        self.site_energy_j = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, sim: Simulator, trace: Optional[TraceLog] = None) -> None:
        """Start the periodic physics tick on ``sim``."""
        self.trace = trace
        if trace is not None and self.fault_injector is None:
            self.fault_injector = FaultInjector(sim, trace)
        self._handle = sim.schedule_periodic(
            self.tick, lambda s: self.update(s.now), start_delay=0.0,
            label=f"{self.name}:tick", priority=0,
        )

    def detach(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------------
    # Physics
    # ------------------------------------------------------------------
    def update(self, now: float) -> float:
        """Advance facility physics to ``now``; returns site power in watts."""
        dt = self.tick if self._last_update is None else now - self._last_update
        self._last_update = now
        self._last_weather = self.weather.sample(now)

        it_power = max(float(self.it_power_source()), 0.0)
        # All IT power becomes heat that the cooling plant must remove.
        cooling_power = self.plant.update(it_power, self._last_weather, dt)
        site_power = self.distribution.update(it_power, cooling_power, dt)

        self.it_energy_j += it_power * dt
        self.site_energy_j += site_power * dt
        return site_power

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current_weather(self) -> WeatherSample:
        return self._last_weather

    @property
    def site_power_w(self) -> float:
        return self.distribution.site_power_w

    @property
    def pue_instantaneous(self) -> float:
        """Instantaneous PUE (site power / IT power); inf when IT is idle."""
        it = self.distribution.it_power_w
        return self.distribution.site_power_w / it if it > 0 else float("inf")

    def components(self) -> List[InfrastructureComponent]:
        """All fault-injectable infrastructure components."""
        out: List[InfrastructureComponent] = []
        for loop in self.plant.loops:
            out.extend([loop.chiller, loop.tower, loop.dry_cooler, loop.pump])
        out.extend([self.distribution.transformer, self.distribution.ups])
        out.extend(self.distribution.pdus)
        return out

    def stress_test(self, sim: Simulator, duration: float = 600.0) -> None:
        """Run a brief plant stress test (Bortot et al. [39] style).

        Temporarily forces the cooling plant to full design load so that
        degraded components reveal themselves in their sensor signatures;
        emits trace markers so diagnostics can align windows.
        """
        original = self.it_power_source
        design_load = sum(loop.chiller.capacity_w for loop in self.plant.loops) * 0.9
        if self.trace is not None:
            self.trace.emit(sim.now, self.name, "stress_test_start", duration=duration)
        self.it_power_source = lambda: design_load

        def end(s: Simulator) -> None:
            self.it_power_source = original
            if self.trace is not None:
                self.trace.emit(s.now, self.name, "stress_test_end")

        sim.schedule(duration, end, label=f"{self.name}:stress_end")

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _read_sensors(self, now: float) -> Dict[str, float]:
        readings: Dict[str, float] = {}
        prefix = self.name
        bias = self.fault_injector.sensor_bias if self.fault_injector else (lambda _n: 1.0)

        readings[f"{prefix}.weather.drybulb"] = self._last_weather.drybulb_c
        readings[f"{prefix}.weather.wetbulb"] = self._last_weather.wetbulb_c
        readings[f"{prefix}.weather.humidity"] = self._last_weather.humidity
        for key, value in self.distribution.sensors().items():
            readings[f"{prefix}.power.{key}"] = value
        readings[f"{prefix}.pue"] = (
            self.pue_instantaneous if np.isfinite(self.pue_instantaneous) else 0.0
        )
        readings[f"{prefix}.it_energy"] = self.it_energy_j
        readings[f"{prefix}.site_energy"] = self.site_energy_j

        for loop in self.plant.loops:
            for key, value in loop.sensors().items():
                readings[f"{prefix}.{loop.name}.{key}"] = value
            for component in (loop.chiller, loop.tower, loop.dry_cooler, loop.pump):
                b = bias(component.name)
                for key, value in component.sensors().items():
                    if key == "health":
                        continue  # ground truth: not observable via telemetry
                    readings[f"{prefix}.{loop.name}.{component.name}.{key}"] = value * b
        for stage in [self.distribution.transformer, self.distribution.ups, *self.distribution.pdus]:
            b = bias(stage.name)
            for key, value in stage.sensors().items():
                if key == "health":
                    continue
                readings[f"{prefix}.power.{stage.name}.{key}"] = value * b

        if self.sensor_noise_floor_w > 0 or self.sensor_noise_rel > 0:
            for key in readings:
                if key.endswith("power") or key.endswith("heat_load"):
                    value = readings[key]
                    sigma = self.sensor_noise_floor_w + self.sensor_noise_rel * abs(value)
                    readings[key] = value + float(self._noise_rng.normal(0.0, sigma))
        return readings

    def metric_specs(self) -> List[MetricSpec]:
        """Specs for every facility metric (registered before first scrape)."""
        labels = {"pillar": "building_infrastructure"}
        specs = [
            MetricSpec(f"{self.name}.weather.drybulb", Unit.CELSIUS, labels=labels),
            MetricSpec(f"{self.name}.weather.wetbulb", Unit.CELSIUS, labels=labels),
            MetricSpec(f"{self.name}.weather.humidity", Unit.FRACTION, low=0, high=1, labels=labels),
            MetricSpec(f"{self.name}.power.site_power", Unit.WATT, low=0, labels=labels),
            MetricSpec(f"{self.name}.power.it_power", Unit.WATT, low=0, labels=labels),
            MetricSpec(f"{self.name}.power.cooling_power", Unit.WATT, low=0, labels=labels),
            MetricSpec(f"{self.name}.power.loss_power", Unit.WATT, low=0, labels=labels),
            MetricSpec(f"{self.name}.pue", Unit.DIMENSIONLESS, low=0, labels=labels),
            MetricSpec(f"{self.name}.it_energy", Unit.JOULE, MetricKind.COUNTER, low=0, labels=labels),
            MetricSpec(f"{self.name}.site_energy", Unit.JOULE, MetricKind.COUNTER, low=0, labels=labels),
        ]
        for loop in self.plant.loops:
            base = f"{self.name}.{loop.name}"
            specs.extend(
                [
                    MetricSpec(f"{base}.supply_temp", Unit.CELSIUS, labels=labels),
                    MetricSpec(f"{base}.setpoint", Unit.CELSIUS, labels=labels),
                    MetricSpec(f"{base}.heat_load", Unit.WATT, low=0, labels=labels),
                    MetricSpec(f"{base}.cooling_power", Unit.WATT, low=0, labels=labels),
                    MetricSpec(f"{base}.mode", Unit.DIMENSIONLESS, labels=labels),
                ]
            )
            for component in (loop.chiller, loop.tower, loop.dry_cooler, loop.pump):
                cbase = f"{base}.{component.name}"
                sample = component.sensors()
                for key in sample:
                    if key == "health":
                        continue
                    specs.append(MetricSpec(f"{cbase}.{key}", labels=labels))
        for stage in [self.distribution.transformer, self.distribution.ups, *self.distribution.pdus]:
            sbase = f"{self.name}.power.{stage.name}"
            for key in stage.sensors():
                if key == "health":
                    continue
                specs.append(MetricSpec(f"{sbase}.{key}", labels=labels))
        return specs

    def sampler(self) -> Sampler:
        """Telemetry sampler covering all facility sensors."""
        return Sampler(
            name=self.name, source=self._read_sensors, specs=self.metric_specs()
        )
