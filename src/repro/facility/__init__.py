"""Building-infrastructure substrate (the first pillar).

Physical models of cooling machinery, power distribution and ambient
weather, aggregated by :class:`~repro.facility.facility.Facility`, with
fault injection for diagnostic ODA benchmarks.
"""

from repro.facility.components import (
    Chiller,
    CoolingTower,
    DryCooler,
    HeatExchanger,
    InfrastructureComponent,
    PowerConversion,
    Pump,
)
from repro.facility.cooling import CoolingLoop, CoolingMode, CoolingPlant
from repro.facility.facility import Facility
from repro.facility.faults import FaultInjector, FaultKind, InjectedFault
from repro.facility.power import PowerDistribution
from repro.facility.site_trace import SitePowerTraceGenerator, SpikePattern
from repro.facility.sizing import scaled_cooling_plant, scaled_distribution
from repro.facility.weather import DAY, YEAR, WeatherModel, WeatherSample

__all__ = [
    "Chiller",
    "CoolingTower",
    "DryCooler",
    "HeatExchanger",
    "InfrastructureComponent",
    "PowerConversion",
    "Pump",
    "CoolingLoop",
    "CoolingMode",
    "CoolingPlant",
    "Facility",
    "FaultInjector",
    "FaultKind",
    "InjectedFault",
    "PowerDistribution",
    "SitePowerTraceGenerator",
    "SpikePattern",
    "scaled_cooling_plant",
    "scaled_distribution",
    "DAY",
    "YEAR",
    "WeatherModel",
    "WeatherSample",
]
