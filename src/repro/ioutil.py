"""Crash-safe file IO helpers shared across the repro package.

Every artifact the library persists — ``.npz`` archives, sharded manifests,
benchmark ``BENCH_*.json`` files, chaos/serving scorecards — goes through
the write-temp-then-rename helpers here, so a crash mid-write can never
leave a half-written file where a reader expects a complete one.  The
temporary file lives in the *same directory* as the destination (``os.replace``
is only atomic within a filesystem), is flushed and fsynced before the
rename, and is unlinked on failure.

The module also hosts the CRC helper used by the durability layer: CRC-32C
(Castagnoli) when the optional :mod:`crc32c` accelerator is importable,
falling back to :func:`zlib.crc32` otherwise.  The algorithm in effect is
recorded alongside every checksum (``CRC_ALGO``) so artifacts written under
one algorithm are verified under the same one.

For crash-injection tests, :func:`commit_hook` exposes the single commit
point (the moment just before ``os.replace``): a test can install a hook
that raises after *k* commits to abort the writer at every interleaving
point of a multi-file save.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading
import zlib
from typing import Any, Callable, Iterator

try:  # pragma: no cover - exercised only where the accelerator is installed
    import crc32c as _crc32c_mod

    def crc32(data: bytes, value: int = 0) -> int:
        return _crc32c_mod.crc32c(data, value)

    CRC_ALGO = "crc32c"
except ImportError:  # graceful fallback: no new dependencies

    def crc32(data, value: int = 0) -> int:
        return zlib.crc32(data, value) & 0xFFFFFFFF

    CRC_ALGO = "crc32"


_hook_state = threading.local()


def _fire_commit_hook(path: str) -> None:
    hook = getattr(_hook_state, "hook", None)
    if hook is not None:
        hook(path)


@contextlib.contextmanager
def commit_hook(hook: Callable[[str], None]) -> Iterator[None]:
    """Install ``hook`` to run just before each atomic rename commits.

    The hook receives the destination path.  Raising from the hook aborts
    the write *before* the destination is touched — the temp file is
    cleaned up and the old contents (if any) stay intact.  Thread-local,
    so concurrent tests do not interfere.
    """
    prev = getattr(_hook_state, "hook", None)
    _hook_state.hook = hook
    try:
        yield
    finally:
        _hook_state.hook = prev


@contextlib.contextmanager
def atomic_open(
    path: str | os.PathLike, mode: str = "wb", *, sync_dir: bool = True
):
    """Open a temp file next to ``path``; atomically rename it in on success.

    Usage::

        with atomic_open(dest, "wb") as fh:
            fh.write(payload)

    On a clean exit the temp file is fsynced and renamed over ``dest``; on
    any exception it is removed and ``dest`` is untouched.  The containing
    directory is fsynced after the rename so the new entry itself survives
    power loss (``sync_dir=False`` skips that for hot paths where
    process-kill durability suffices).
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=f".{os.path.basename(path)}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        _fire_commit_hook(path)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    if sync_dir:
        fsync_dir(directory)


def atomic_write_bytes(path: str | os.PathLike, payload: bytes) -> None:
    with atomic_open(path, "wb") as fh:
        fh.write(payload)


def atomic_write_text(path: str | os.PathLike, text: str) -> None:
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(
    path: str | os.PathLike,
    obj: Any,
    *,
    indent: int | None = 2,
    sort_keys: bool = False,
) -> None:
    atomic_write_text(
        path, json.dumps(obj, indent=indent, sort_keys=sort_keys) + "\n"
    )


def fsync_dir(path: str | os.PathLike) -> None:
    """Fsync a directory so a just-renamed entry survives power loss."""
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:  # platforms/filesystems that refuse O_RDONLY on dirs
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
