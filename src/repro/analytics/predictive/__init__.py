"""Predictive analytics — "what will happen?" (Table I, third row).

Regression and time-series forecasters (incl. the PRACTISE-style
ensemble), FFT power-spike forecasting (the LLNL use case), job duration
and resource prediction, component-failure prediction, cooling demand and
performance models, KPI forecasting, and evaluation utilities.
"""

from repro.analytics.predictive.cooling import (
    CoolingDemandForecaster,
    CoolingPerformanceModel,
)
from repro.analytics.predictive.evaluation import (
    forecast_skill,
    mae,
    mape,
    rmse,
    rolling_origin_backtest,
)
from repro.analytics.predictive.failures import FailurePredictor, FailureWarning
from repro.analytics.predictive.fourier import (
    FourierForecaster,
    RampEvent,
    detect_ramps,
)
from repro.analytics.predictive.jobs import (
    JobDurationPredictor,
    ResourceClassPredictor,
    submission_features,
)
from repro.analytics.predictive.kpi_forecast import KpiForecaster
from repro.analytics.predictive.regression import (
    LinearRegression,
    RidgeRegression,
    polynomial_features,
)
from repro.analytics.predictive.timeseries import (
    ARForecaster,
    ExponentialSmoothing,
    HoltWinters,
    NaiveForecaster,
    PractiseEnsemble,
    SeasonalNaiveForecaster,
)

__all__ = [
    "CoolingDemandForecaster",
    "CoolingPerformanceModel",
    "forecast_skill",
    "mae",
    "mape",
    "rmse",
    "rolling_origin_backtest",
    "FailurePredictor",
    "FailureWarning",
    "FourierForecaster",
    "RampEvent",
    "detect_ramps",
    "JobDurationPredictor",
    "ResourceClassPredictor",
    "submission_features",
    "KpiForecaster",
    "LinearRegression",
    "RidgeRegression",
    "polynomial_features",
    "ARForecaster",
    "ExponentialSmoothing",
    "HoltWinters",
    "NaiveForecaster",
    "PractiseEnsemble",
    "SeasonalNaiveForecaster",
]
