"""Component-failure prediction (Sîrbu & Babaoglu [48]).

The substrate's fault model raises a node's ECC-error rate during the
lead time before a crash; the predictor learns a threshold rule over the
recent ECC increment and temperature, giving operators a warning horizon
to drain jobs off a dying node — the "proactive autonomics" the surveyed
work targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InsufficientDataError
from repro.simulation.trace import TraceLog
from repro.telemetry.store import TimeSeriesStore

__all__ = ["FailureWarning", "FailurePredictor"]


@dataclass(frozen=True)
class FailureWarning:
    """A predicted impending node failure."""

    node: str
    time: float
    ecc_rate: float
    score: float


class FailurePredictor:
    """ECC-ramp failure predictor.

    A node is flagged when its ECC-error increment over the recent window
    exceeds ``ecc_rate_threshold`` errors per hour — healthy nodes emit
    none, pre-crash nodes ramp to dozens.  ``warn()`` scans the fleet at
    one instant; ``evaluate()`` scores warnings against trace ground truth.
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        window_s: float = 1800.0,
        ecc_rate_threshold: float = 10.0,
    ):
        self.store = store
        self.window_s = window_s
        self.ecc_rate_threshold = ecc_rate_threshold

    def ecc_rate(self, metric: str, at: float) -> float:
        """ECC errors per hour over the trailing window (counter diff)."""
        times, counts = self.store.query(metric, at - self.window_s, at)
        if times.size < 2:
            raise InsufficientDataError(f"{metric}: need >= 2 samples in window")
        increment = float(counts[-1] - counts[0])
        span_h = (times[-1] - times[0]) / 3600.0
        return increment / span_h if span_h > 0 else 0.0

    def warn(self, node_metric_paths: Dict[str, str], at: float) -> List[FailureWarning]:
        """Nodes predicted to fail soon, highest risk first."""
        warnings: List[FailureWarning] = []
        for node, metric in sorted(node_metric_paths.items()):
            try:
                rate = self.ecc_rate(metric, at)
            except InsufficientDataError:
                continue
            if rate >= self.ecc_rate_threshold:
                warnings.append(
                    FailureWarning(
                        node=node,
                        time=at,
                        ecc_rate=rate,
                        score=rate / self.ecc_rate_threshold,
                    )
                )
        warnings.sort(key=lambda w: -w.score)
        return warnings

    def evaluate(
        self,
        node_metric_paths: Dict[str, str],
        trace: TraceLog,
        scan_period: float,
        since: float,
        until: float,
        lead_time_s: float = 3600.0,
    ) -> Dict[str, float]:
        """Score warning quality against crash ground truth in the trace.

        A crash counts as *predicted* if any warning for that node fired in
        the ``lead_time_s`` before it.  A warning is a *false positive* if
        no crash on that node follows within ``lead_time_s``.
        """
        crashes = [
            (r.time, r.source.split(".")[-1])
            for r in trace.select(kind="node_crash", since=since, until=until)
        ]
        all_warnings: List[FailureWarning] = []
        at = since + self.window_s
        while at <= until:
            all_warnings.extend(self.warn(node_metric_paths, at))
            at += scan_period

        predicted = 0
        for crash_time, node in crashes:
            if any(
                w.node == node and crash_time - lead_time_s <= w.time <= crash_time
                for w in all_warnings
            ):
                predicted += 1
        false_warnings = sum(
            1
            for w in all_warnings
            if not any(
                node == w.node and w.time <= crash_time <= w.time + lead_time_s
                for crash_time, node in crashes
            )
        )
        recall = predicted / len(crashes) if crashes else 1.0
        precision = (
            (len(all_warnings) - false_warnings) / len(all_warnings)
            if all_warnings
            else 1.0
        )
        return {
            "crashes": float(len(crashes)),
            "predicted": float(predicted),
            "warnings": float(len(all_warnings)),
            "recall": recall,
            "precision": precision,
        }
