"""Job duration and resource-usage prediction.

The application-pillar predictive use cases of Table I:

* **Duration prediction** [30][34][35] — per-user/per-application history
  is the dominant signal in production traces; the
  :class:`JobDurationPredictor` combines a user-app historical estimate
  with a ridge regression on submission features, and falls back to the
  user's requested walltime when history is absent.
* **Resource-usage prediction** (Evalix [31]) — classify a submission into
  power/IO consumption classes from the same features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analytics.diagnostic.classifiers import RandomForestClassifier
from repro.analytics.predictive.regression import RidgeRegression
from repro.apps.generator import JobRequest
from repro.errors import InsufficientDataError, NotFittedError
from repro.software.jobs import Job, JobState

__all__ = ["submission_features", "JobDurationPredictor", "ResourceClassPredictor"]

#: Feature vector layout for a submission (before it runs).
SUBMISSION_FEATURES = (
    "nodes", "walltime_req_s", "hour_of_day", "day_of_week", "profile_hash",
)


def submission_features(request: JobRequest) -> np.ndarray:
    """Features available at submission time only (no oracle leakage)."""
    hour = (request.submit_time % 86_400.0) / 3600.0
    day = (request.submit_time % (7 * 86_400.0)) / 86_400.0
    import zlib

    profile_hash = (zlib.crc32(request.profile.name.encode()) % 1000) / 1000.0
    return np.array(
        [
            float(request.nodes),
            request.walltime_req_s,
            hour,
            day,
            profile_hash,
        ]
    )


class JobDurationPredictor:
    """Hybrid duration predictor: user-app history + ridge regression.

    Prediction order:

    1. If the (user, profile) pair has history, predict the mean of its
       last ``history_window`` runtimes — the strongest known signal.
    2. Otherwise use the fitted regression on submission features.
    3. If the model is unfitted, fall back to a fixed fraction of the
       requested walltime (users overestimate systematically).
    """

    def __init__(self, history_window: int = 5, walltime_fraction: float = 0.4):
        self.history_window = history_window
        self.walltime_fraction = walltime_fraction
        self.model = RidgeRegression(alpha=10.0)
        self._fitted = False
        self._history: Dict[Tuple[str, str], List[float]] = {}

    # ------------------------------------------------------------------
    def observe(self, job: Job) -> None:
        """Record a finished job into the per-(user, app) history."""
        if job.runtime is None or job.state is not JobState.COMPLETED:
            return
        key = (job.user, job.profile_name)
        runs = self._history.setdefault(key, [])
        runs.append(job.runtime)
        if len(runs) > self.history_window:
            del runs[: len(runs) - self.history_window]

    def fit(self, jobs: Sequence[Job]) -> "JobDurationPredictor":
        """Fit the regression on completed jobs and ingest their history."""
        completed = [
            j for j in jobs if j.state is JobState.COMPLETED and j.runtime is not None
        ]
        if len(completed) < 8:
            raise InsufficientDataError(
                f"need >= 8 completed jobs to fit, got {len(completed)}"
            )
        X = np.stack([submission_features(j.request) for j in completed])
        y = np.array([j.runtime for j in completed])
        # Log-space target: runtimes are heavy-tailed.
        self.model.fit(X, np.log(y))
        self._fitted = True
        for job in completed:
            self.observe(job)
        return self

    def predict(self, request: JobRequest) -> float:
        """Predicted runtime in seconds for a new submission."""
        history = self._history.get((request.user, request.profile.name))
        if history:
            return float(np.mean(history))
        if self._fitted:
            log_prediction = float(self.model.predict(submission_features(request)[None, :])[0])
            prediction = float(np.exp(np.clip(log_prediction, 0.0, 13.0)))
            return min(prediction, request.walltime_req_s)
        return request.walltime_req_s * self.walltime_fraction

    def evaluate(self, jobs: Sequence[Job]) -> Dict[str, float]:
        """MAE / MAPE of predictions against actual runtimes.

        Evaluation is honest: each job is predicted *before* being observed
        into the history, in submission order.
        """
        completed = sorted(
            (j for j in jobs if j.state is JobState.COMPLETED and j.runtime),
            key=lambda j: j.request.submit_time,
        )
        if not completed:
            raise InsufficientDataError("no completed jobs to evaluate")
        errors, relative = [], []
        for job in completed:
            prediction = self.predict(job.request)
            errors.append(abs(prediction - job.runtime))
            relative.append(abs(prediction - job.runtime) / job.runtime)
            self.observe(job)
        return {
            "mae_s": float(np.mean(errors)),
            "mape": float(np.mean(relative)),
            "n": float(len(completed)),
        }


class ResourceClassPredictor:
    """Evalix-style resource-consumption classifier [31].

    Discretizes a continuous resource target (mean node power, total I/O)
    into ``n_classes`` quantile classes and learns to predict the class
    from submission features.
    """

    def __init__(self, n_classes: int = 3, seed: int = 0):
        if n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        self.n_classes = n_classes
        self.forest = RandomForestClassifier(n_trees=25, max_depth=8, seed=seed)
        self.edges_: Optional[np.ndarray] = None

    def fit(self, requests: Sequence[JobRequest], usage: np.ndarray) -> "ResourceClassPredictor":
        usage = np.asarray(usage, dtype=np.float64)
        if len(requests) != usage.size or usage.size < self.n_classes * 4:
            raise InsufficientDataError("need >= 4 samples per class")
        quantiles = np.linspace(0, 1, self.n_classes + 1)[1:-1]
        self.edges_ = np.quantile(usage, quantiles)
        y = np.digitize(usage, self.edges_)
        X = np.stack([submission_features(r) for r in requests])
        self.forest.fit(X, y)
        return self

    def predict(self, requests: Sequence[JobRequest]) -> np.ndarray:
        if self.edges_ is None:
            raise NotFittedError("fit was never called")
        X = np.stack([submission_features(r) for r in requests])
        return self.forest.predict(X)

    def classify_usage(self, usage: np.ndarray) -> np.ndarray:
        """Ground-truth class of observed usage values (for scoring)."""
        if self.edges_ is None:
            raise NotFittedError("fit was never called")
        return np.digitize(np.asarray(usage, dtype=np.float64), self.edges_)
