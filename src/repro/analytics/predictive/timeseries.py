"""Time-series forecasters: naive baselines, AR, Holt-Winters, ensemble.

The forecasting battery predictive ODA runs on sensor streams (Table I:
"forecasting hardware sensors" [32][47]).  The :class:`PractiseEnsemble`
mirrors the core idea of PRACTISE [32]: combine seasonal-aware and
trend-aware base models and weight them by recent backtest error so the
forecaster stays robust across regimes.

All forecasters share the protocol ``fit(values) -> self`` and
``forecast(horizon) -> ndarray`` on a regularly-sampled series.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analytics.common import lag_matrix
from repro.analytics.predictive.regression import RidgeRegression
from repro.errors import InsufficientDataError, NotFittedError

__all__ = [
    "NaiveForecaster",
    "SeasonalNaiveForecaster",
    "ExponentialSmoothing",
    "HoltWinters",
    "ARForecaster",
    "PractiseEnsemble",
]


class NaiveForecaster:
    """Persist the last observation ("tomorrow equals today")."""

    def __init__(self) -> None:
        self._last: Optional[float] = None

    def fit(self, values: np.ndarray) -> "NaiveForecaster":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise InsufficientDataError("empty series")
        self._last = float(values[-1])
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        if self._last is None:
            raise NotFittedError("fit was never called")
        return np.full(horizon, self._last)


class SeasonalNaiveForecaster:
    """Repeat the last full season."""

    def __init__(self, period: int):
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self._season: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray) -> "SeasonalNaiveForecaster":
        values = np.asarray(values, dtype=np.float64)
        if values.size < self.period:
            raise InsufficientDataError(
                f"need >= {self.period} samples, got {values.size}"
            )
        self._season = values[-self.period :].copy()
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        if self._season is None:
            raise NotFittedError("fit was never called")
        reps = int(np.ceil(horizon / self.period))
        return np.tile(self._season, reps)[:horizon]


class ExponentialSmoothing:
    """Simple exponential smoothing (level only)."""

    def __init__(self, alpha: float = 0.3):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._level: Optional[float] = None

    def fit(self, values: np.ndarray) -> "ExponentialSmoothing":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise InsufficientDataError("empty series")
        level = values[0]
        for v in values[1:]:
            level += self.alpha * (v - level)
        self._level = float(level)
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        if self._level is None:
            raise NotFittedError("fit was never called")
        return np.full(horizon, self._level)


class HoltWinters:
    """Additive Holt-Winters: level + trend + seasonal components."""

    def __init__(self, period: int, alpha: float = 0.3, beta: float = 0.05, gamma: float = 0.1):
        if period < 2:
            raise ValueError("period must be >= 2")
        for name, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not 0 < value <= 1:
                raise ValueError(f"{name} must be in (0, 1]")
        self.period = period
        self.alpha, self.beta, self.gamma = alpha, beta, gamma
        self._level: Optional[float] = None
        self._trend = 0.0
        self._seasonal: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray) -> "HoltWinters":
        values = np.asarray(values, dtype=np.float64)
        m = self.period
        if values.size < 2 * m:
            raise InsufficientDataError(f"need >= {2*m} samples, got {values.size}")
        # Initialisation: first-season mean as level, season-over-season trend.
        level = values[:m].mean()
        trend = (values[m : 2 * m].mean() - values[:m].mean()) / m
        seasonal = values[:m] - level
        for i in range(m, values.size):
            season_idx = i % m
            prev_level = level
            level = self.alpha * (values[i] - seasonal[season_idx]) + (1 - self.alpha) * (
                level + trend
            )
            trend = self.beta * (level - prev_level) + (1 - self.beta) * trend
            seasonal[season_idx] = self.gamma * (values[i] - level) + (
                1 - self.gamma
            ) * seasonal[season_idx]
        self._level, self._trend, self._seasonal = float(level), float(trend), seasonal
        # The next forecast index continues from len(values).
        self._next_idx = values.size
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        if self._level is None or self._seasonal is None:
            raise NotFittedError("fit was never called")
        steps = np.arange(1, horizon + 1)
        seasonal = self._seasonal[(self._next_idx + steps - 1) % self.period]
        return self._level + steps * self._trend + seasonal


class ARForecaster:
    """Autoregressive model on ridge-fitted lags, iterated for the horizon."""

    def __init__(self, lags: int = 24, alpha: float = 1.0):
        if lags < 1:
            raise ValueError("lags must be >= 1")
        self.lags = lags
        self.model = RidgeRegression(alpha=alpha)
        self._history: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray) -> "ARForecaster":
        values = np.asarray(values, dtype=np.float64)
        X, y = lag_matrix(values, self.lags)
        self.model.fit(X, y)
        self._history = values[-self.lags :].copy()
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        if self._history is None:
            raise NotFittedError("fit was never called")
        history = self._history.copy()
        out = np.empty(horizon)
        for i in range(horizon):
            out[i] = float(self.model.predict(history[None, :])[0])
            history = np.roll(history, -1)
            history[-1] = out[i]
        return out


class PractiseEnsemble:
    """Backtest-weighted ensemble of base forecasters (PRACTISE [32]).

    Fits every base model on the head of the series, scores each on the
    held-out tail, and weights forecasts by inverse validation MAE.  Models
    that cannot fit (too little data) are dropped silently.
    """

    def __init__(self, period: int, lags: int = 24, holdout_fraction: float = 0.2):
        self.period = period
        self.lags = lags
        self.holdout_fraction = holdout_fraction
        self._fitted: List = []
        self._weights: Optional[np.ndarray] = None

    def _candidates(self) -> List:
        """Factories so validation and final models are independent fits."""
        return [
            NaiveForecaster,
            lambda: SeasonalNaiveForecaster(self.period),
            ExponentialSmoothing,
            lambda: HoltWinters(self.period),
            lambda: ARForecaster(lags=min(self.lags, self.period)),
        ]

    def fit(self, values: np.ndarray) -> "PractiseEnsemble":
        values = np.asarray(values, dtype=np.float64)
        holdout = max(int(values.size * self.holdout_fraction), 1)
        head, tail = values[:-holdout], values[-holdout:]
        self._fitted = []
        weights = []
        scale = float(np.mean(np.abs(tail))) or 1.0
        for factory in self._candidates():
            try:
                probe = factory()
                probe.fit(head)
                error = float(np.mean(np.abs(probe.forecast(holdout) - tail)))
                final = factory()
                final.fit(values)
            except InsufficientDataError:
                continue
            self._fitted.append(final)
            weights.append(1.0 / (error + 0.01 * scale))
        if not self._fitted:
            raise InsufficientDataError("no base model could fit the series")
        w = np.array(weights)
        self._weights = w / w.sum()
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        if self._weights is None:
            raise NotFittedError("fit was never called")
        forecasts = np.stack([m.forecast(horizon) for m in self._fitted])
        return (self._weights[:, None] * forecasts).sum(axis=0)

    @property
    def model_weights(self) -> Dict[str, float]:
        """Diagnostic view of the ensemble composition."""
        if self._weights is None:
            raise NotFittedError("fit was never called")
        return {
            type(m).__name__: float(w) for m, w in zip(self._fitted, self._weights)
        }
