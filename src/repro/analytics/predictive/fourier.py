"""FFT-based power forecasting — the LLNL utility-notification use case.

Section V-C of the paper: LLNL must notify its utility whenever site power
moves by more than 750 kW within a 15-minute window; they identified power
spike patterns with Fourier transforms on historical monitoring data and
used them to forecast consumption [72].

:class:`FourierForecaster` reproduces the method: keep the dominant
spectral components of the history (the daily/weekly operational rhythms),
extrapolate them forward, and detect imminent ramp events by thresholding
the forecast's 15-minute differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import InsufficientDataError, NotFittedError

__all__ = ["RampEvent", "FourierForecaster", "detect_ramps"]


@dataclass(frozen=True)
class RampEvent:
    """A power movement exceeding the notification threshold."""

    time: float
    delta_w: float       # signed power change over the window
    direction: str       # "up" or "down"


def detect_ramps(
    times: np.ndarray,
    watts: np.ndarray,
    threshold_w: float = 750e3,
    window_s: float = 900.0,
) -> List[RampEvent]:
    """All instants where power moved more than ``threshold_w`` within
    ``window_s`` (the LLNL contractual condition).

    Scans with a two-pointer pass over the (time, value) series; emits one
    event per breach onset (consecutive breaching samples are merged).
    """
    times = np.asarray(times, dtype=np.float64)
    watts = np.asarray(watts, dtype=np.float64)
    if times.size != watts.size or times.size < 2:
        raise InsufficientDataError("need matching time/value arrays with >= 2 samples")
    events: List[RampEvent] = []
    in_event = False
    left = 0
    for right in range(times.size):
        while times[right] - times[left] > window_s:
            left += 1
        window = watts[left : right + 1]
        delta = float(window.max() - window.min())
        # Sign: did the max come after the min (ramp up) or before (down)?
        if delta > threshold_w:
            if not in_event:
                argmax, argmin = int(window.argmax()), int(window.argmin())
                direction = "up" if argmax > argmin else "down"
                signed = delta if direction == "up" else -delta
                events.append(
                    RampEvent(time=float(times[right]), delta_w=signed, direction=direction)
                )
                in_event = True
        else:
            in_event = False
    return events


class FourierForecaster:
    """Spectral forecaster: keep dominant harmonics, extrapolate.

    Parameters
    ----------
    n_harmonics:
        Number of dominant non-DC frequency components retained.
    detrend:
        Remove (and later restore) a linear trend before the FFT, which
        avoids leakage from slow drifts into the harmonics.
    """

    def __init__(self, n_harmonics: int = 8, detrend: bool = True):
        if n_harmonics < 1:
            raise ValueError("n_harmonics must be >= 1")
        self.n_harmonics = n_harmonics
        self.detrend = detrend
        self._n: Optional[int] = None
        self._dt: Optional[float] = None
        self._freqs: Optional[np.ndarray] = None
        self._coeffs: Optional[np.ndarray] = None
        self._trend: Tuple[float, float] = (0.0, 0.0)
        self._t0: float = 0.0

    def fit(self, times: np.ndarray, values: np.ndarray) -> "FourierForecaster":
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.size != values.size or times.size < 8:
            raise InsufficientDataError("need >= 8 regularly-sampled points")
        steps = np.diff(times)
        dt = float(np.median(steps))
        if dt <= 0 or np.any(np.abs(steps - dt) > dt * 0.01):
            raise InsufficientDataError("FourierForecaster needs regular sampling")
        self._dt = dt
        self._n = times.size
        self._t0 = float(times[0])

        work = values.copy()
        if self.detrend:
            slope, intercept = np.polyfit(times - self._t0, work, 1)
            self._trend = (float(slope), float(intercept))
            work = work - (slope * (times - self._t0) + intercept)
        else:
            self._trend = (0.0, float(0.0))

        spectrum = np.fft.rfft(work)
        freqs = np.fft.rfftfreq(self._n, d=dt)
        # Keep DC plus the strongest harmonics.
        magnitude = np.abs(spectrum)
        magnitude[0] = 0.0  # DC handled separately below
        keep = np.argsort(magnitude)[-self.n_harmonics :]
        self._freqs = freqs[keep]
        self._coeffs = spectrum[keep]
        self._dc = spectrum[0].real / self._n
        return self

    def predict(self, times: np.ndarray) -> np.ndarray:
        """Evaluate the spectral model at arbitrary times (past or future)."""
        if self._freqs is None or self._coeffs is None or self._n is None:
            raise NotFittedError("fit was never called")
        times = np.asarray(times, dtype=np.float64)
        rel = times - self._t0
        # Sum of retained harmonics: 2/N * |c| cos(2 pi f t + phase).
        out = np.full(times.shape, self._dc)
        for freq, coeff in zip(self._freqs, self._coeffs):
            amplitude = 2.0 * np.abs(coeff) / self._n
            phase = np.angle(coeff)
            out += amplitude * np.cos(2 * np.pi * freq * rel + phase)
        slope, intercept = self._trend
        return out + slope * rel + intercept

    def forecast(self, horizon_s: float, step_s: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Forecast ``horizon_s`` seconds past the end of the training data."""
        if self._dt is None or self._n is None:
            raise NotFittedError("fit was never called")
        step = step_s or self._dt
        start = self._t0 + self._n * self._dt
        times = np.arange(start, start + horizon_s, step)
        return times, self.predict(times)

    def forecast_ramps(
        self,
        horizon_s: float,
        threshold_w: float = 750e3,
        window_s: float = 900.0,
    ) -> List[RampEvent]:
        """Forecast, then apply the ramp detector — the notification list
        an operator would send the utility ahead of time."""
        times, watts = self.forecast(horizon_s)
        if times.size < 2:
            return []
        return detect_ramps(times, watts, threshold_w=threshold_w, window_s=window_s)
