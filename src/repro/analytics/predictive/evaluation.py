"""Forecast evaluation: error metrics and rolling-origin backtesting."""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.errors import InsufficientDataError

__all__ = ["mae", "rmse", "mape", "forecast_skill", "rolling_origin_backtest"]


def mae(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute error."""
    actual, predicted = np.asarray(actual), np.asarray(predicted)
    return float(np.mean(np.abs(actual - predicted)))


def rmse(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Root mean squared error."""
    actual, predicted = np.asarray(actual), np.asarray(predicted)
    return float(np.sqrt(np.mean((actual - predicted) ** 2)))


def mape(actual: np.ndarray, predicted: np.ndarray, epsilon: float = 1e-12) -> float:
    """Mean absolute percentage error (zero-safe)."""
    actual, predicted = np.asarray(actual, dtype=float), np.asarray(predicted, dtype=float)
    denominator = np.maximum(np.abs(actual), epsilon)
    return float(np.mean(np.abs(actual - predicted) / denominator))


def forecast_skill(actual: np.ndarray, predicted: np.ndarray, baseline: np.ndarray) -> float:
    """1 - MAE(model)/MAE(baseline); positive means the model adds value."""
    baseline_error = mae(actual, baseline)
    if baseline_error == 0:
        return 0.0
    return 1.0 - mae(actual, predicted) / baseline_error


def rolling_origin_backtest(
    values: np.ndarray,
    make_model: Callable[[], object],
    horizon: int,
    n_folds: int = 5,
    min_train: int = 50,
) -> Dict[str, float]:
    """Rolling-origin evaluation of a forecaster factory.

    At each fold the model is fitted on a growing prefix and scored on the
    next ``horizon`` samples.  Returns mean MAE/RMSE across folds plus the
    persistence-baseline MAE for skill computation.
    """
    values = np.asarray(values, dtype=np.float64)
    needed = min_train + horizon * n_folds
    if values.size < needed:
        raise InsufficientDataError(f"need >= {needed} samples, got {values.size}")
    fold_maes: List[float] = []
    fold_rmses: List[float] = []
    naive_maes: List[float] = []
    origins = np.linspace(min_train, values.size - horizon, n_folds).astype(int)
    for origin in origins:
        train, test = values[:origin], values[origin : origin + horizon]
        model = make_model()
        model.fit(train)
        prediction = model.forecast(horizon)
        fold_maes.append(mae(test, prediction))
        fold_rmses.append(rmse(test, prediction))
        naive_maes.append(mae(test, np.full(horizon, train[-1])))
    mean_mae = float(np.mean(fold_maes))
    mean_naive = float(np.mean(naive_maes))
    return {
        "mae": mean_mae,
        "rmse": float(np.mean(fold_rmses)),
        "naive_mae": mean_naive,
        "skill": 1.0 - mean_mae / mean_naive if mean_naive > 0 else 0.0,
        "folds": float(len(origins)),
    }
