"""Data-center KPI forecasting (Shoukourian & Kranzlmüller [45]).

Forecasts efficiency KPIs (PUE, total cooling power) hours ahead from
lagged telemetry plus calendar features.  The published system uses LSTMs;
offline we use ridge regression over the same feature structure (lags +
time-of-day encoding), which captures the diurnal/seasonal dynamics the
substrate produces.  This is also the "predictive augmentation" plugged
into prescriptive controllers for proactive operation (Section V-A).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.analytics.predictive.regression import RidgeRegression
from repro.errors import InsufficientDataError, NotFittedError
from repro.telemetry.store import TimeSeriesStore

__all__ = ["KpiForecaster"]


class KpiForecaster:
    """Lagged-feature ridge forecaster for any store metric.

    Parameters
    ----------
    lags:
        Number of lagged samples fed as features.
    horizon:
        Forecast distance in samples (direct multi-step: the model is
        trained to predict ``t + horizon`` from lags up to ``t``).
    step:
        Sampling step in seconds used when reading from the store.
    """

    def __init__(self, lags: int = 24, horizon: int = 6, step: float = 600.0, alpha: float = 5.0):
        if lags < 1 or horizon < 1:
            raise ValueError("lags and horizon must be >= 1")
        self.lags = lags
        self.horizon = horizon
        self.step = step
        self.model = RidgeRegression(alpha=alpha)
        self._fitted = False

    # ------------------------------------------------------------------
    def _features(self, values: np.ndarray, times: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(X, y) with lag features + sin/cos time-of-day encoding."""
        n = values.size - self.lags - self.horizon + 1
        if n < 10:
            raise InsufficientDataError(
                f"need >= {self.lags + self.horizon + 9} samples, got {values.size}"
            )
        X = np.empty((n, self.lags + 2))
        y = np.empty(n)
        for i in range(n):
            X[i, : self.lags] = values[i : i + self.lags]
            anchor = times[i + self.lags - 1]
            phase = 2 * np.pi * (anchor % 86_400.0) / 86_400.0
            X[i, self.lags] = np.sin(phase)
            X[i, self.lags + 1] = np.cos(phase)
            y[i] = values[i + self.lags + self.horizon - 1]
        return X, y

    def fit(
        self, store: TimeSeriesStore, metric: str, since: float, until: float
    ) -> "KpiForecaster":
        times, values = store.resample(metric, since, until, self.step)
        mask = np.isfinite(values)
        times, values = times[mask], values[mask]
        X, y = self._features(values, times)
        self.model.fit(X, y)
        self._fitted = True
        self._metric = metric
        return self

    def predict_from(self, recent_values: np.ndarray, at_time: float) -> float:
        """Forecast ``horizon`` steps past ``at_time`` from recent samples."""
        if not self._fitted:
            raise NotFittedError("fit was never called")
        recent_values = np.asarray(recent_values, dtype=np.float64)
        if recent_values.size < self.lags:
            raise InsufficientDataError(f"need {self.lags} recent samples")
        phase = 2 * np.pi * (at_time % 86_400.0) / 86_400.0
        row = np.concatenate(
            [recent_values[-self.lags :], [np.sin(phase), np.cos(phase)]]
        )
        return float(self.model.predict(row[None, :])[0])

    def backtest(
        self, store: TimeSeriesStore, metric: str, since: float, until: float
    ) -> dict:
        """Out-of-sample evaluation vs the persistence baseline.

        The fitted model is applied to a window it was not trained on; the
        persistence baseline predicts ``value[t + horizon] = value[t]``.
        """
        if not self._fitted:
            raise NotFittedError("fit was never called")
        times, values = store.resample(metric, since, until, self.step)
        mask = np.isfinite(values)
        times, values = times[mask], values[mask]
        X, y = self._features(values, times)
        predictions = self.model.predict(X)
        persistence = X[:, self.lags - 1]
        mae = float(np.mean(np.abs(predictions - y)))
        naive_mae = float(np.mean(np.abs(persistence - y)))
        return {
            "mae": mae,
            "naive_mae": naive_mae,
            "skill": 1.0 - mae / naive_mae if naive_mae > 0 else 0.0,
            "n": int(y.size),
        }
