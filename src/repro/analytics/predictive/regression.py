"""Linear models from scratch: OLS, ridge, polynomial features.

The workhorses of the surveyed predictive ODA — resource-usage regression
(Evalix [31], Matsunaga & Fortes [53]), power modelling (Sîrbu & Babaoglu
[52]) — implemented on ``lstsq``/normal equations.  Ridge with lagged
features also serves as the offline stand-in for the LSTM KPI forecaster of
Shoukourian & Kranzlmüller [45].
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import InsufficientDataError, NotFittedError

__all__ = ["LinearRegression", "RidgeRegression", "polynomial_features"]


class LinearRegression:
    """Ordinary least squares with an intercept, via ``lstsq``."""

    def __init__(self) -> None:
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    @staticmethod
    def _design(X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        return X

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X = self._design(X)
        y = np.asarray(y, dtype=np.float64)
        if X.shape[0] != y.shape[0] or X.shape[0] < X.shape[1] + 1:
            raise InsufficientDataError(
                f"need > {X.shape[1]} samples for {X.shape[1]} features"
            )
        augmented = np.column_stack([X, np.ones(X.shape[0])])
        solution, *_ = np.linalg.lstsq(augmented, y, rcond=None)
        self.coef_ = solution[:-1]
        self.intercept_ = float(solution[-1])
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise NotFittedError("fit was never called")
        return self._design(X) @ self.coef_ + self.intercept_

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2."""
        y = np.asarray(y, dtype=np.float64)
        residual = y - self.predict(X)
        total = y - y.mean()
        denom = float((total**2).sum())
        if denom == 0:
            return 0.0
        return 1.0 - float((residual**2).sum()) / denom


class RidgeRegression(LinearRegression):
    """L2-regularized least squares via the normal equations.

    The intercept is not penalized (features are centred internally).
    """

    def __init__(self, alpha: float = 1.0):
        super().__init__()
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        X = self._design(X)
        y = np.asarray(y, dtype=np.float64)
        if X.shape[0] != y.shape[0] or X.shape[0] < 2:
            raise InsufficientDataError("need >= 2 samples")
        x_mean = X.mean(axis=0)
        y_mean = float(y.mean())
        Xc = X - x_mean
        yc = y - y_mean
        gram = Xc.T @ Xc + self.alpha * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        return self


def polynomial_features(X: np.ndarray, degree: int = 2) -> np.ndarray:
    """Powers of each feature up to ``degree`` (no cross terms).

    Adequate for the smooth univariate physical relations the substrate
    produces (COP vs temperature, power vs utilization).
    """
    if degree < 1:
        raise ValueError("degree must be >= 1")
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X[:, None]
    return np.hstack([X**d for d in range(1, degree + 1)])
