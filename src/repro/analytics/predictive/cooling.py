"""Cooling demand and cooling performance prediction.

Table I's infrastructure predictive cell: forecast cooling demand
(Kjærgaard et al. [37]) and model cooling performance as a function of
conditions and settings (Conficoni et al. [18], Shoukourian et al. [46]).
The performance model is a ridge regression on physically-motivated
features (IT load, ambient, setpoint) learned from facility telemetry —
usable both to forecast the impact of configuration changes and as the
inner model of the prescriptive setpoint optimizer.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.analytics.predictive.regression import RidgeRegression, polynomial_features
from repro.analytics.predictive.timeseries import HoltWinters
from repro.errors import InsufficientDataError, NotFittedError
from repro.telemetry.store import TimeSeriesStore

__all__ = ["CoolingDemandForecaster", "CoolingPerformanceModel"]


class CoolingDemandForecaster:
    """Forecast plant heat load with seasonal Holt-Winters.

    ``period_samples`` should map to one day of samples so the diurnal
    load cycle is the learned season.
    """

    def __init__(self, period_samples: int):
        self.model = HoltWinters(period=period_samples)
        self._fitted = False

    def fit(
        self,
        store: TimeSeriesStore,
        metric: str,
        since: float,
        until: float,
        step: float,
    ) -> "CoolingDemandForecaster":
        _, values = store.resample(metric, since, until, step)
        finite = values[np.isfinite(values)]
        if finite.size < values.size * 0.9:
            raise InsufficientDataError(f"{metric}: too many gaps for forecasting")
        self.model.fit(finite)
        self._fitted = True
        return self

    def forecast(self, horizon_samples: int) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("fit was never called")
        return self.model.forecast(horizon_samples)


class CoolingPerformanceModel:
    """Learned cooling power = f(IT load, weather, setpoint).

    Features are quadratic expansions of (heat load, dry-bulb, wet-bulb,
    setpoint); the model answers "what would cooling power be if the
    setpoint were X under current conditions", which is exactly the query
    the prescriptive optimizer issues.
    """

    FEATURES = ("heat_load", "drybulb", "wetbulb", "setpoint")

    def __init__(self, alpha: float = 1.0, degree: int = 2):
        self.model = RidgeRegression(alpha=alpha)
        self.degree = degree
        self._fitted = False

    def fit_from_store(
        self,
        store: TimeSeriesStore,
        since: float,
        until: float,
        step: float = 300.0,
        loop: str = "loop0",
    ) -> "CoolingPerformanceModel":
        """Fit from the standard facility metric paths."""
        names = [
            f"facility.{loop}.heat_load",
            "facility.weather.drybulb",
            "facility.weather.wetbulb",
            f"facility.{loop}.setpoint",
            f"facility.{loop}.cooling_power",
        ]
        _, matrix = store.align(names, since, until, step)
        mask = np.isfinite(matrix).all(axis=1)
        matrix = matrix[mask]
        if matrix.shape[0] < 20:
            raise InsufficientDataError("need >= 20 complete samples to fit")
        return self.fit(matrix[:, :4], matrix[:, 4])

    def fit(self, X: np.ndarray, cooling_power: np.ndarray) -> "CoolingPerformanceModel":
        self.model.fit(polynomial_features(X, self.degree), cooling_power)
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("fit was never called")
        return self.model.predict(polynomial_features(X, self.degree))

    def predict_at(
        self, heat_load_w: float, drybulb_c: float, wetbulb_c: float, setpoint_c: float
    ) -> float:
        """Point query used by the setpoint optimizer."""
        row = np.array([[heat_load_w, drybulb_c, wetbulb_c, setpoint_c]])
        return float(self.predict(row)[0])

    def setpoint_sensitivity(
        self, heat_load_w: float, drybulb_c: float, wetbulb_c: float,
        setpoints: np.ndarray,
    ) -> np.ndarray:
        """Predicted cooling power across a setpoint sweep (what-if curve)."""
        rows = np.column_stack([
            np.full(setpoints.size, heat_load_w),
            np.full(setpoints.size, drybulb_c),
            np.full(setpoints.size, wetbulb_c),
            setpoints,
        ])
        return self.predict(rows)
