"""Outlier removal — the data-cleaning step of descriptive ODA.

Sensor glitches (stuck values, spikes, drop-outs) pollute every downstream
model; descriptive pipelines scrub them first.  Three standard cleaners are
provided, all vectorized and NaN-preserving: values judged outlying are
replaced with NaN so downstream alignment/ffill policies decide how to fill
them.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["zscore_clean", "mad_clean", "hampel_filter", "outlier_fraction"]


def zscore_clean(values: np.ndarray, threshold: float = 4.0) -> np.ndarray:
    """Replace samples more than ``threshold`` global std-devs out with NaN."""
    values = np.asarray(values, dtype=np.float64).copy()
    finite = np.isfinite(values)
    if finite.sum() < 3:
        return values
    mean = values[finite].mean()
    std = values[finite].std()
    if std == 0:
        return values
    mask = finite & (np.abs(values - mean) > threshold * std)
    values[mask] = np.nan
    return values


def mad_clean(values: np.ndarray, threshold: float = 5.0) -> np.ndarray:
    """Median/MAD variant of :func:`zscore_clean` — robust to heavy tails.

    Uses the scaled median absolute deviation (1.4826 x MAD approximates
    sigma under normality), which survives up to 50 % contamination.
    """
    from repro.analytics.common import robust_scale

    values = np.asarray(values, dtype=np.float64).copy()
    finite = np.isfinite(values)
    if finite.sum() < 3:
        return values
    median = np.median(values[finite])
    scale = robust_scale(values[finite])
    if scale == 0:
        return values
    mask = finite & (np.abs(values - median) > threshold * scale)
    values[mask] = np.nan
    return values


def hampel_filter(values: np.ndarray, window: int = 11, threshold: float = 3.0) -> np.ndarray:
    """Sliding-window Hampel filter: local median/MAD outlier removal.

    Catches spikes that global statistics miss in trending series.  The
    window must be odd; edges use truncated windows.
    """
    if window % 2 == 0 or window < 3:
        raise ValueError(f"window must be odd and >= 3, got {window}")
    values = np.asarray(values, dtype=np.float64).copy()
    n = values.size
    half = window // 2
    out = values.copy()
    for i in range(n):
        lo, hi = max(0, i - half), min(n, i + half + 1)
        segment = values[lo:hi]
        finite = segment[np.isfinite(segment)]
        if finite.size < 3 or not np.isfinite(values[i]):
            continue
        median = np.median(finite)
        mad = 1.4826 * np.median(np.abs(finite - median))
        if mad > 0 and abs(values[i] - median) > threshold * mad:
            out[i] = np.nan
    return out


def outlier_fraction(original: np.ndarray, cleaned: np.ndarray) -> float:
    """Fraction of originally-finite samples that a cleaner NaN'd out."""
    original = np.asarray(original, dtype=np.float64)
    cleaned = np.asarray(cleaned, dtype=np.float64)
    finite_before = np.isfinite(original)
    if finite_before.sum() == 0:
        return 0.0
    removed = finite_before & ~np.isfinite(cleaned)
    return float(removed.sum() / finite_before.sum())
