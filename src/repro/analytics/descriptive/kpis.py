"""Data-center efficiency KPIs: PUE, ITUE, TUE, ERE, CUE.

The descriptive cornerstone of infrastructure and hardware ODA
(Table I, bottom row): Power Usage Effectiveness [4] at the facility level
and IT Usage Effectiveness / Total Usage Effectiveness [59] at the system
level, each computed from energy integrals over a window (the standard
practice — instantaneous ratios are too noisy for reporting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import InsufficientDataError
from repro.telemetry.store import TimeSeriesStore

__all__ = ["pue", "itue", "tue", "ere", "KpiReport", "compute_kpi_report"]


def _window_energy(
    store: TimeSeriesStore, power_metric: str, since: float, until: float
) -> float:
    """Trapezoidal energy integral of a power metric over a window."""
    times, watts = store.query(power_metric, since, until)
    if times.size < 2:
        raise InsufficientDataError(
            f"{power_metric}: need >= 2 samples in window for energy integral"
        )
    return float(np.trapezoid(watts, times))


def pue(
    store: TimeSeriesStore,
    since: float,
    until: float,
    site_metric: str = "facility.power.site_power",
    it_metric: str = "facility.power.it_power",
) -> float:
    """Power Usage Effectiveness over a window: site energy / IT energy [4].

    PUE = 1.0 is the theoretical ideal; production facilities report
    1.02-1.6 depending on cooling technology and climate.
    """
    it_energy = _window_energy(store, it_metric, since, until)
    if it_energy <= 0:
        raise InsufficientDataError("IT energy is zero; PUE undefined on idle window")
    return _window_energy(store, site_metric, since, until) / it_energy


def itue(
    store: TimeSeriesStore,
    since: float,
    until: float,
    it_metric: str = "facility.power.it_power",
    compute_metric: str = "cluster.it_power",
    support_fraction: float = 0.1,
) -> float:
    """IT Usage Effectiveness [59]: total IT energy / compute-only energy.

    Separates "useful" compute power from node-internal support draw (fans,
    VRs, idle overhead).  ``support_fraction`` approximates the share of a
    node's power that is support rather than computation when an explicit
    support metric is unavailable.
    """
    it_energy = _window_energy(store, it_metric, since, until)
    compute_energy = _window_energy(store, compute_metric, since, until)
    useful = compute_energy * (1.0 - support_fraction)
    if useful <= 0:
        raise InsufficientDataError("compute energy is zero; ITUE undefined")
    return it_energy / useful


def tue(pue_value: float, itue_value: float) -> float:
    """Total Usage Effectiveness: TUE = PUE x ITUE [59]."""
    return pue_value * itue_value


def ere(
    store: TimeSeriesStore,
    since: float,
    until: float,
    reuse_metric: Optional[str] = None,
    site_metric: str = "facility.power.site_power",
    it_metric: str = "facility.power.it_power",
) -> float:
    """Energy Reuse Effectiveness: (site - reused) energy / IT energy.

    With no heat-reuse metric the reused term is zero and ERE equals PUE.
    """
    site_energy = _window_energy(store, site_metric, since, until)
    it_energy = _window_energy(store, it_metric, since, until)
    reused = (
        _window_energy(store, reuse_metric, since, until) if reuse_metric else 0.0
    )
    if it_energy <= 0:
        raise InsufficientDataError("IT energy is zero; ERE undefined")
    return (site_energy - reused) / it_energy


@dataclass(frozen=True)
class KpiReport:
    """A window's worth of headline efficiency KPIs."""

    since: float
    until: float
    pue: float
    itue: float
    tue: float
    it_energy_kwh: float
    site_energy_kwh: float

    def rows(self) -> list:
        """Dashboard-friendly (name, value) rows."""
        return [
            ("PUE", round(self.pue, 3)),
            ("ITUE", round(self.itue, 3)),
            ("TUE", round(self.tue, 3)),
            ("IT energy [kWh]", round(self.it_energy_kwh, 1)),
            ("Site energy [kWh]", round(self.site_energy_kwh, 1)),
        ]


def compute_kpi_report(store: TimeSeriesStore, since: float, until: float) -> KpiReport:
    """All efficiency KPIs for a window, from the standard metric paths."""
    pue_value = pue(store, since, until)
    itue_value = itue(store, since, until)
    return KpiReport(
        since=since,
        until=until,
        pue=pue_value,
        itue=itue_value,
        tue=tue(pue_value, itue_value),
        it_energy_kwh=_window_energy(store, "facility.power.it_power", since, until) / 3.6e6,
        site_energy_kwh=_window_energy(store, "facility.power.site_power", since, until) / 3.6e6,
    )
