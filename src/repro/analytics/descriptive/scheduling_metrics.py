"""Scheduling quality-of-service metrics (descriptive, system software).

Implements the classic parallel-job-scheduling metrics of Feitelson [60]
over the scheduler's accounting log: bounded slowdown, wait time,
turnaround, utilization and throughput — the numbers scheduler-level
dashboards [61][62] put in front of operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import InsufficientDataError
from repro.software.jobs import Job, JobState

__all__ = ["SchedulingReport", "scheduling_report", "per_user_report"]


@dataclass(frozen=True)
class SchedulingReport:
    """Aggregate QoS statistics over a set of completed jobs."""

    jobs: int
    mean_wait_s: float
    p95_wait_s: float
    mean_slowdown: float
    p95_slowdown: float
    mean_turnaround_s: float
    throughput_jobs_per_day: float
    node_seconds: float
    completed_fraction: float

    def rows(self) -> list:
        return [
            ("jobs", self.jobs),
            ("mean wait [s]", round(self.mean_wait_s, 1)),
            ("p95 wait [s]", round(self.p95_wait_s, 1)),
            ("mean bounded slowdown", round(self.mean_slowdown, 2)),
            ("p95 bounded slowdown", round(self.p95_slowdown, 2)),
            ("mean turnaround [s]", round(self.mean_turnaround_s, 1)),
            ("throughput [jobs/day]", round(self.throughput_jobs_per_day, 1)),
            ("completed fraction", round(self.completed_fraction, 3)),
        ]


def _finished(jobs: Sequence[Job]) -> List[Job]:
    return [
        j for j in jobs
        if j.terminal and j.runtime is not None and j.wait_time is not None
    ]


def scheduling_report(
    jobs: Sequence[Job], horizon_s: Optional[float] = None
) -> SchedulingReport:
    """Compute the QoS report over an accounting log.

    ``horizon_s`` (for throughput) defaults to the span between the first
    submission and the last completion in the log.
    """
    finished = _finished(jobs)
    if not finished:
        raise InsufficientDataError("no finished jobs with complete timing records")
    waits = np.array([j.wait_time for j in finished])
    slowdowns = np.array([j.slowdown() for j in finished])
    turnarounds = np.array([j.turnaround for j in finished])
    completed = [j for j in finished if j.state is JobState.COMPLETED]

    if horizon_s is None:
        first = min(j.request.submit_time for j in finished)
        last = max(j.end_time for j in finished)
        horizon_s = max(last - first, 1.0)

    return SchedulingReport(
        jobs=len(finished),
        mean_wait_s=float(waits.mean()),
        p95_wait_s=float(np.percentile(waits, 95)),
        mean_slowdown=float(slowdowns.mean()),
        p95_slowdown=float(np.percentile(slowdowns, 95)),
        mean_turnaround_s=float(turnarounds.mean()),
        throughput_jobs_per_day=len(completed) / (horizon_s / 86_400.0),
        node_seconds=float(sum(j.node_seconds or 0.0 for j in finished)),
        completed_fraction=len(completed) / len(finished),
    )


def per_user_report(jobs: Sequence[Job]) -> Dict[str, SchedulingReport]:
    """QoS report split by user (the fairness view dashboards show)."""
    by_user: Dict[str, List[Job]] = {}
    for job in _finished(jobs):
        by_user.setdefault(job.user, []).append(job)
    return {user: scheduling_report(user_jobs) for user, user_jobs in by_user.items()}
