"""Descriptive analytics — "what happened?" (Table I, bottom row).

KPI computation (PUE/ITUE/TUE/ERE), scheduling QoS metrics, System
Information Entropy, aggregation and quantile transport, outlier removal,
dimensionality reduction (PCA, correlation-wise smoothing), text dashboards
and the roofline model.
"""

from repro.analytics.descriptive.aggregate import (
    QuantileSummary,
    group_aggregate,
    normalize,
    quantile_transport,
)
from repro.analytics.descriptive.dashboard import Dashboard, heatmap, sparkline, table
from repro.analytics.descriptive.entropy import (
    entropy_series,
    shannon_entropy,
    state_entropy,
)
from repro.analytics.descriptive.kpis import (
    KpiReport,
    compute_kpi_report,
    ere,
    itue,
    pue,
    tue,
)
from repro.analytics.descriptive.outliers import (
    hampel_filter,
    mad_clean,
    outlier_fraction,
    zscore_clean,
)
from repro.analytics.descriptive.reduction import (
    PCA,
    correlation_order,
    correlation_wise_smoothing,
)
from repro.analytics.descriptive.roofline import RooflineModel, RooflinePoint
from repro.analytics.descriptive.scheduling_metrics import (
    SchedulingReport,
    per_user_report,
    scheduling_report,
)

__all__ = [
    "QuantileSummary",
    "group_aggregate",
    "normalize",
    "quantile_transport",
    "Dashboard",
    "heatmap",
    "sparkline",
    "table",
    "entropy_series",
    "shannon_entropy",
    "state_entropy",
    "KpiReport",
    "compute_kpi_report",
    "ere",
    "itue",
    "pue",
    "tue",
    "hampel_filter",
    "mad_clean",
    "outlier_fraction",
    "zscore_clean",
    "PCA",
    "correlation_order",
    "correlation_wise_smoothing",
    "RooflineModel",
    "RooflinePoint",
    "SchedulingReport",
    "per_user_report",
    "scheduling_report",
]
