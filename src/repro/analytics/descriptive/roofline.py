"""Roofline performance model (Williams et al. [63]).

The descriptive application-pillar model of Table I: given a machine's
peak FLOP rate and memory bandwidth, every code region is either
bandwidth-bound (left of the ridge point) or compute-bound (right of it),
and its attainable performance is ``min(peak, intensity * bandwidth)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.apps.instrumentation import RegionProfile

__all__ = ["RooflineModel", "RooflinePoint"]


@dataclass(frozen=True)
class RooflinePoint:
    """One region placed on the roofline."""

    region: str
    arithmetic_intensity: float  # FLOP/byte
    achieved_gflops: float
    attainable_gflops: float
    memory_bound: bool

    @property
    def efficiency(self) -> float:
        """Achieved / attainable (1.0 = sitting on the roof)."""
        if self.attainable_gflops <= 0:
            return 0.0
        return min(self.achieved_gflops / self.attainable_gflops, 1.0)


@dataclass(frozen=True)
class RooflineModel:
    """A machine roofline: peak compute and peak memory bandwidth."""

    peak_gflops: float = 3000.0
    peak_mem_bw_gbs: float = 200.0

    @property
    def ridge_intensity(self) -> float:
        """The FLOP/byte ratio where the two roofs intersect."""
        return self.peak_gflops / self.peak_mem_bw_gbs

    def attainable(self, intensity: float) -> float:
        """Attainable GFLOP/s at a given arithmetic intensity."""
        return min(self.peak_gflops, intensity * self.peak_mem_bw_gbs)

    def place(self, region: RegionProfile) -> RooflinePoint:
        """Place one instrumented region on the roofline."""
        attainable = self.attainable(region.arithmetic_intensity)
        return RooflinePoint(
            region=region.region,
            arithmetic_intensity=region.arithmetic_intensity,
            achieved_gflops=region.gflops,
            attainable_gflops=attainable,
            memory_bound=region.arithmetic_intensity < self.ridge_intensity,
        )

    def analyze(self, regions: Sequence[RegionProfile]) -> List[RooflinePoint]:
        """Place all regions; sorted by time share descending is the caller's
        job since RegionProfile carries it."""
        return [self.place(r) for r in regions]

    def bottleneck_report(self, regions: Sequence[RegionProfile]) -> List[Tuple[str, str]]:
        """Human-readable (region, verdict) pairs for dashboards."""
        report = []
        for point in self.analyze(regions):
            kind = "memory-bound" if point.memory_bound else "compute-bound"
            report.append(
                (point.region, f"{kind}, {point.efficiency:.0%} of attainable")
            )
        return report
