"""Aggregation and quantile transport (PerSyst-style [6]).

Large systems cannot ship every node's every sample to the operator;
production monitors aggregate per group (rack, job, system) and transport
quantiles instead of raw streams.  These helpers do the same over the
store's aligned matrices, all vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InsufficientDataError
from repro.telemetry.store import TimeSeriesStore

__all__ = ["QuantileSummary", "quantile_transport", "group_aggregate", "normalize"]

_DEFAULT_QUANTILES = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


@dataclass(frozen=True)
class QuantileSummary:
    """Per-timestep cross-sectional quantiles of a metric over many entities.

    ``matrix[i, q]`` is quantile ``quantiles[q]`` across entities at grid
    point ``i`` — the compact representation PerSyst ships upstream.
    """

    grid: np.ndarray
    quantiles: Tuple[float, ...]
    matrix: np.ndarray

    def series(self, q: float) -> np.ndarray:
        """The time series of one quantile level."""
        try:
            j = self.quantiles.index(q)
        except ValueError:
            raise KeyError(f"quantile {q} not in summary {self.quantiles}") from None
        return self.matrix[:, j]

    @property
    def median(self) -> np.ndarray:
        return self.series(0.5)

    @property
    def spread(self) -> np.ndarray:
        """Inter-decile spread (p90 - p10) — a cheap imbalance indicator."""
        return self.series(0.9) - self.series(0.1)


def quantile_transport(
    store: TimeSeriesStore,
    metric_pattern: str,
    since: float,
    until: float,
    step: float,
    quantiles: Sequence[float] = _DEFAULT_QUANTILES,
) -> QuantileSummary:
    """Summarise all matching series into cross-sectional quantiles."""
    names = store.select(metric_pattern)
    if not names:
        raise InsufficientDataError(f"no series match {metric_pattern!r}")
    grid, matrix = store.align(names, since, until, step)
    quantiles = tuple(quantiles)
    out = np.full((grid.size, len(quantiles)), np.nan)
    for i in range(grid.size):
        row = matrix[i, :]
        finite = row[np.isfinite(row)]
        if finite.size:
            out[i, :] = np.quantile(finite, quantiles)
    return QuantileSummary(grid=grid, quantiles=quantiles, matrix=out)


def group_aggregate(
    store: TimeSeriesStore,
    groups: Mapping[str, Sequence[str]],
    since: float,
    until: float,
    step: float,
    agg: str = "mean",
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    """Aggregate metric groups (e.g. per-rack power) onto a common grid.

    ``groups`` maps a group label to the member metric names; the result is
    the grid plus one aggregated series per group.
    """
    grid: Optional[np.ndarray] = None
    out: Dict[str, np.ndarray] = {}
    for label, names in groups.items():
        g, matrix = store.align(list(names), since, until, step, agg=agg)
        if grid is None:
            grid = g
        with np.errstate(invalid="ignore"):
            out[label] = np.nanmean(matrix, axis=1) if matrix.size else np.full(g.size, np.nan)
    if grid is None:
        raise InsufficientDataError("no groups given")
    return grid, out


def normalize(values: np.ndarray, low: float, high: float) -> np.ndarray:
    """Clamp-and-scale a series into [0, 1] given plausibility bounds.

    The descriptive normalization step the paper mentions; NaNs pass
    through untouched.
    """
    if high <= low:
        raise ValueError(f"high must exceed low, got [{low}, {high}]")
    values = np.asarray(values, dtype=np.float64)
    return np.clip((values - low) / (high - low), 0.0, 1.0)
