"""System Information Entropy (SIE) — Hui et al. [14].

A single scalar characterising how "disordered" the system's state is:
the Shannon entropy of the distribution of observed state symbols (here,
discretised multi-sensor states across nodes).  Spikes in SIE flag state
transitions — job churn, cascading failures, thermal events — without any
per-metric thresholds, which is why it appears as a descriptive hardware
indicator in the paper's Table I.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import InsufficientDataError
from repro.telemetry.store import TimeSeriesStore

__all__ = ["shannon_entropy", "state_entropy", "entropy_series"]


def shannon_entropy(counts: np.ndarray) -> float:
    """Shannon entropy in bits of a histogram of symbol counts."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-(probabilities * np.log2(probabilities)).sum())


def state_entropy(matrix: np.ndarray, bins: int = 4) -> float:
    """Entropy of the distribution of discretised row-states.

    ``matrix`` is ``(entities, sensors)``: each entity (node) is mapped to a
    state symbol by quantile-binning each sensor into ``bins`` levels; the
    entropy of the symbol histogram is the SIE.  Uniform systems (all nodes
    alike) score 0; maximally diverse systems score ``log2(entities)``.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] < 1:
        raise InsufficientDataError("state_entropy needs a non-empty 2-D matrix")
    # Per-sensor quantile bin edges; digitize each column.
    symbols = np.zeros(matrix.shape[0], dtype=np.int64)
    for j in range(matrix.shape[1]):
        column = matrix[:, j]
        edges = np.quantile(column, np.linspace(0, 1, bins + 1)[1:-1])
        digit = np.digitize(column, edges)
        symbols = symbols * bins + digit
    _, counts = np.unique(symbols, return_counts=True)
    return shannon_entropy(counts)


def entropy_series(
    store: TimeSeriesStore,
    metric_pattern: str,
    since: float,
    until: float,
    step: float,
    bins: int = 4,
) -> Tuple[np.ndarray, np.ndarray]:
    """SIE over time for all series matching ``metric_pattern``.

    At each grid point the matching metrics form the (entities x 1) state
    matrix; the returned series is the entropy at each step.  This is the
    dashboard-ready "LogSCAN-style" system state indicator.
    """
    names = store.select(metric_pattern)
    if not names:
        raise InsufficientDataError(f"no series match {metric_pattern!r}")
    grid, matrix = store.align(names, since, until, step)
    values = np.zeros(grid.size)
    for i in range(grid.size):
        row = matrix[i, :]
        finite = row[np.isfinite(row)]
        if finite.size == 0:
            values[i] = 0.0
            continue
        values[i] = state_entropy(finite.reshape(-1, 1), bins=bins)
    return grid, values
