"""Text dashboards: the visualization face of descriptive ODA.

Renders store contents as terminal-friendly panels — sparklines, heatmaps,
gauge tables — standing in for the Grafana/ClusterCockpit dashboards of
Table I's descriptive row [1][5][7][61].  Everything returns plain strings
so examples and tests can assert on content.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InsufficientDataError
from repro.telemetry.store import TimeSeriesStore

__all__ = ["sparkline", "heatmap", "table", "Dashboard"]

_SPARK_CHARS = " ▁▂▃▄▅▆▇█"
_HEAT_CHARS = " .:-=+*#%@"


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """Unicode sparkline of a series, resampled to ``width`` characters."""
    values = np.asarray(values, dtype=np.float64)
    values = values[np.isfinite(values)]
    if values.size == 0:
        return " " * width
    if values.size > width:
        # Block-mean downsample to the display width.
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array([values[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = values.min(), values.max()
    if hi == lo:
        return _SPARK_CHARS[1] * values.size
    scaled = ((values - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)).astype(int)
    return "".join(_SPARK_CHARS[i] for i in scaled)


def heatmap(matrix: np.ndarray, row_labels: Sequence[str], title: str = "") -> str:
    """ASCII heatmap: rows = entities, columns = time, global scale.

    NaNs render as spaces.  Used for the classic node x time power/
    temperature walls on operator dashboards.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise InsufficientDataError("heatmap needs a 2-D matrix")
    finite = matrix[np.isfinite(matrix)]
    lines = [title] if title else []
    if finite.size == 0:
        lo, hi = 0.0, 1.0
    else:
        lo, hi = float(finite.min()), float(finite.max())
    span = (hi - lo) or 1.0
    label_width = max((len(l) for l in row_labels), default=0)
    for label, row in zip(row_labels, matrix):
        cells = []
        for value in row:
            if not np.isfinite(value):
                cells.append(" ")
            else:
                idx = int((value - lo) / span * (len(_HEAT_CHARS) - 1))
                cells.append(_HEAT_CHARS[idx])
        lines.append(f"{label:>{label_width}} |{''.join(cells)}|")
    lines.append(f"{'':>{label_width}}  scale: {lo:.3g} '{_HEAT_CHARS[0]}' .. {hi:.3g} '{_HEAT_CHARS[-1]}'")
    return "\n".join(lines)


def table(rows: Sequence[Tuple[str, object]], title: str = "") -> str:
    """Two-column key/value table with aligned separators."""
    lines = [title, "-" * max(len(title), 1)] if title else []
    width = max((len(str(k)) for k, _ in rows), default=0)
    for key, value in rows:
        lines.append(f"{key:<{width}} : {value}")
    return "\n".join(lines)


class Dashboard:
    """A composable multi-panel text dashboard over a telemetry store.

    Examples
    --------
    >>> dash = Dashboard(store, since=0.0, until=3600.0)
    >>> dash.add_sparkline("site power", "facility.power.site_power")
    >>> print(dash.render())  # doctest: +SKIP
    """

    def __init__(self, store: TimeSeriesStore, since: float, until: float, width: int = 60):
        self.store = store
        self.since = since
        self.until = until
        self.width = width
        self._panels: List[str] = []

    def add_sparkline(self, label: str, metric: str, agg: str = "mean") -> None:
        """One metric as a sparkline with min/mean/max annotations."""
        step = max((self.until - self.since) / self.width, 1e-9)
        _, values = self.store.resample(metric, self.since, self.until, step, agg=agg)
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            self._panels.append(f"{label}: (no data)")
            return
        spark = sparkline(values, self.width)
        self._panels.append(
            f"{label}\n  {spark}\n  min {finite.min():.4g}  mean {finite.mean():.4g}  max {finite.max():.4g}"
        )

    def add_heatmap(self, title: str, metric_pattern: str, max_rows: int = 16) -> None:
        """All metrics matching a pattern as a time heatmap."""
        names = self.store.select(metric_pattern)[:max_rows]
        if not names:
            self._panels.append(f"{title}: (no matching series)")
            return
        step = max((self.until - self.since) / self.width, 1e-9)
        grid, matrix = self.store.align(names, self.since, self.until, step)
        self._panels.append(heatmap(matrix.T, names, title=title))

    def add_table(self, title: str, rows: Sequence[Tuple[str, object]]) -> None:
        self._panels.append(table(rows, title=title))

    def add_text(self, text: str) -> None:
        self._panels.append(text)

    def render(self) -> str:
        """Assemble all panels into one string."""
        bar = "=" * self.width
        return ("\n" + bar + "\n").join(self._panels)
