"""Dimensionality reduction: PCA and correlation-wise smoothing.

Two reducers from the paper's descriptive toolbox:

* **PCA** — from scratch on the thin SVD (``full_matrices=False``, per the
  hpc-parallel optimization guide: never compute the full decomposition when
  only the leading components are used).  Doubles as the backbone of the
  reconstruction-error anomaly detector in the diagnostic package.
* **Correlation-wise smoothing (CS)** — Netti et al. [47]: order metrics by
  correlation so that correlated sensors sit next to each other, then smooth
  along the metric axis, producing compact image-like sketches of system
  state for lightweight knowledge extraction.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import InsufficientDataError, NotFittedError

__all__ = ["PCA", "correlation_order", "correlation_wise_smoothing"]


class PCA:
    """Principal component analysis via the thin SVD.

    Parameters
    ----------
    n_components:
        Number of leading components to retain.

    Attributes
    ----------
    components_:
        ``(n_components, n_features)`` — rows are principal axes.
    explained_variance_ratio_:
        Fraction of total variance captured per retained component.
    """

    def __init__(self, n_components: int):
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "PCA":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] < 2:
            raise InsufficientDataError("PCA needs a 2-D matrix with >= 2 rows")
        if self.n_components > min(X.shape):
            raise InsufficientDataError(
                f"n_components={self.n_components} exceeds min(shape)={min(X.shape)}"
            )
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        # Thin SVD: all we need for the leading components.
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        self.components_ = vt[: self.n_components]
        variance = singular_values**2
        total = variance.sum()
        self.explained_variance_ratio_ = (
            variance[: self.n_components] / total if total > 0 else np.zeros(self.n_components)
        )
        return self

    def _check(self) -> None:
        if self.components_ is None or self.mean_ is None:
            raise NotFittedError("PCA.fit was never called")

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project rows onto the retained principal axes."""
        self._check()
        return (np.asarray(X, dtype=np.float64) - self.mean_) @ self.components_.T

    def inverse_transform(self, Z: np.ndarray) -> np.ndarray:
        """Reconstruct from component space back to feature space."""
        self._check()
        return np.asarray(Z, dtype=np.float64) @ self.components_ + self.mean_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def reconstruction_error(self, X: np.ndarray) -> np.ndarray:
        """Per-row L2 reconstruction error — the anomaly score of [17]-style
        autoencoder detectors, with PCA standing in for the autoencoder."""
        X = np.asarray(X, dtype=np.float64)
        reconstructed = self.inverse_transform(self.transform(X))
        return np.linalg.norm(X - reconstructed, axis=1)


def correlation_order(X: np.ndarray) -> np.ndarray:
    """Greedy ordering of columns by correlation (CS method, step 1) [47].

    Starts from the column with the highest total absolute correlation and
    repeatedly appends the unplaced column most correlated with the last
    placed one, so neighbouring columns in the output are highly correlated.
    Returns the column permutation.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[1] < 1:
        raise InsufficientDataError("correlation_order needs a 2-D matrix")
    n = X.shape[1]
    if n == 1:
        return np.array([0])
    # Columns with zero variance correlate with nothing; park them last.
    std = X.std(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = np.corrcoef(X, rowvar=False)
    corr = np.nan_to_num(np.abs(corr), nan=0.0)
    np.fill_diagonal(corr, 0.0)

    start = int(corr.sum(axis=0).argmax())
    order = [start]
    placed = {start}
    while len(order) < n:
        last = order[-1]
        candidates = corr[last].copy()
        candidates[list(placed)] = -1.0
        nxt = int(candidates.argmax())
        order.append(nxt)
        placed.add(nxt)
    return np.array(order)


def correlation_wise_smoothing(
    X: np.ndarray, block: int = 4, order: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """CS sketching [47]: reorder columns by correlation, smooth in blocks.

    Returns ``(sketch, order)`` where ``sketch`` has
    ``ceil(n_features / block)`` columns, each the mean of a block of
    correlation-adjacent features.  This compresses hundreds of sensors into
    a handful of stable channels with minimal information loss — the paper's
    example of "lightweight knowledge extraction" for monitoring data.
    """
    X = np.asarray(X, dtype=np.float64)
    if block < 1:
        raise ValueError("block must be >= 1")
    if order is None:
        order = correlation_order(X)
    ordered = X[:, order]
    n = ordered.shape[1]
    blocks = [
        ordered[:, i : i + block].mean(axis=1) for i in range(0, n, block)
    ]
    return np.column_stack(blocks), order
