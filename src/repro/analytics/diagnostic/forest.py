"""Isolation forest — unsupervised outlier detection from scratch.

Complements the PCA-based detectors for anomaly shapes that are not
captured by linear subspaces.  Standard Liu/Ting/Zhou construction:
anomalies isolate in fewer random splits, so the expected path length over
an ensemble of random trees converts into an outlier score in (0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import InsufficientDataError, NotFittedError

__all__ = ["IsolationForest"]


@dataclass
class _INode:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_INode"] = None
    right: Optional["_INode"] = None
    size: int = 0  # leaf: number of training rows that landed here

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _average_path_length(n: int) -> float:
    """Expected path length of unsuccessful BST search among n points."""
    if n <= 1:
        return 0.0
    harmonic = np.log(n - 1) + np.euler_gamma
    return 2.0 * harmonic - 2.0 * (n - 1) / n


class IsolationForest:
    """Ensemble of random isolation trees.

    Parameters
    ----------
    n_trees:
        Ensemble size.
    sample_size:
        Sub-sample per tree (256 is the canonical default).
    contamination:
        Expected anomaly fraction; sets the detection threshold at the
        corresponding score quantile of the training data.
    """

    def __init__(
        self,
        n_trees: int = 100,
        sample_size: int = 256,
        contamination: float = 0.05,
        seed: int = 0,
    ):
        if not 0.0 < contamination < 0.5:
            raise ValueError("contamination must be in (0, 0.5)")
        self.n_trees = n_trees
        self.sample_size = sample_size
        self.contamination = contamination
        self.seed = seed
        self._trees: List[_INode] = []
        self._sample_used = 0
        self.threshold_: Optional[float] = None

    def _build(self, X: np.ndarray, rng: np.random.Generator, depth: int, limit: int) -> _INode:
        if depth >= limit or X.shape[0] <= 1:
            return _INode(size=X.shape[0])
        feature = int(rng.integers(X.shape[1]))
        lo, hi = X[:, feature].min(), X[:, feature].max()
        if lo == hi:
            return _INode(size=X.shape[0])
        threshold = float(rng.uniform(lo, hi))
        mask = X[:, feature] < threshold
        return _INode(
            feature=feature,
            threshold=threshold,
            left=self._build(X[mask], rng, depth + 1, limit),
            right=self._build(X[~mask], rng, depth + 1, limit),
        )

    def fit(self, X: np.ndarray) -> "IsolationForest":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] < 4:
            raise InsufficientDataError("need a 2-D matrix with >= 4 rows")
        rng = np.random.default_rng(self.seed)
        sample = min(self.sample_size, X.shape[0])
        self._sample_used = sample
        limit = int(np.ceil(np.log2(max(sample, 2))))
        self._trees = []
        for _ in range(self.n_trees):
            idx = rng.choice(X.shape[0], size=sample, replace=False)
            self._trees.append(self._build(X[idx], rng, 0, limit))
        scores = self.score(X)
        self.threshold_ = float(np.quantile(scores, 1.0 - self.contamination))
        return self

    def _path_length(self, row: np.ndarray, node: _INode, depth: int) -> float:
        while not node.is_leaf:
            node = node.left if row[node.feature] < node.threshold else node.right
            depth += 1
        return depth + _average_path_length(node.size)

    def score(self, X: np.ndarray) -> np.ndarray:
        """Anomaly scores in (0, 1]; higher = more anomalous."""
        if not self._trees:
            raise NotFittedError("fit was never called")
        X = np.asarray(X, dtype=np.float64)
        c = _average_path_length(self._sample_used) or 1.0
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            mean_path = np.mean([self._path_length(row, t, 0) for t in self._trees])
            out[i] = 2.0 ** (-mean_path / c)
        return out

    def detect(self, X: np.ndarray) -> np.ndarray:
        """Boolean anomaly mask at the fitted contamination threshold."""
        if self.threshold_ is None:
            raise NotFittedError("fit was never called")
        return self.score(X) > self.threshold_
