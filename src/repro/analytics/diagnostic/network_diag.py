"""Network contention diagnosis (link-level analysis).

The Table I hardware diagnostic "diagnosing network contention issues"
[19][55]: identify saturated links in the fabric, attribute the traffic
crossing them to jobs, and name victim/aggressor pairs — the core of
Jha et al.'s link-level characterization and OVIS/overtime-style
interference analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cluster.network import FatTreeFabric, LinkKey
from repro.software.jobs import Job

__all__ = ["ContentionIncident", "NetworkDiagnostician"]


@dataclass(frozen=True)
class ContentionIncident:
    """One diagnosed contention hot-spot."""

    link: LinkKey
    utilization: float
    jobs: Tuple[str, ...]      # all jobs crossing the link
    aggressor: str             # job contributing the most traffic
    victims: Tuple[str, ...]   # other affected jobs

    def describe(self) -> str:
        link = f"{self.link[0]}<->{self.link[1]}"
        victims = ", ".join(self.victims) or "none"
        return (
            f"link {link} at {self.utilization:.0%}: aggressor {self.aggressor}, "
            f"victims: {victims}"
        )


class NetworkDiagnostician:
    """Diagnoses link-level contention from the fabric's current step state.

    The fabric must have been stepped (flows offered) before diagnosis —
    typically right after the scheduler's ``_install_loads``.
    """

    def __init__(self, fabric: FatTreeFabric, saturation_threshold: float = 0.9):
        self.fabric = fabric
        self.saturation_threshold = saturation_threshold

    def _traffic_by_job(self) -> Dict[LinkKey, Dict[str, float]]:
        """Per-link traffic attribution: {link: {job_id: crossings}}."""
        attribution: Dict[LinkKey, Dict[str, float]] = {}
        for job_id, links in self.fabric._flow_links.items():
            for link in links:
                attribution.setdefault(link, {})
                attribution[link][job_id] = attribution[link].get(job_id, 0.0) + 1.0
        return attribution

    def diagnose(self) -> List[ContentionIncident]:
        """All saturated links with job attribution, worst first."""
        incidents: List[ContentionIncident] = []
        attribution = self._traffic_by_job()
        for link, utilization in self.fabric.hot_links(self.saturation_threshold):
            jobs = attribution.get(link, {})
            if not jobs:
                continue
            ranked = sorted(jobs.items(), key=lambda item: -item[1])
            aggressor = ranked[0][0]
            victims = tuple(job_id for job_id, _ in ranked[1:])
            incidents.append(
                ContentionIncident(
                    link=link,
                    utilization=utilization,
                    jobs=tuple(job_id for job_id, _ in ranked),
                    aggressor=aggressor,
                    victims=victims,
                )
            )
        return incidents

    def victim_slowdowns(self, running: Sequence[Job]) -> Dict[str, float]:
        """Current contention slowdown factor per running job (>= 1)."""
        return {
            job.job_id: self.fabric.flow_slowdown(job.job_id) for job in running
        }

    def interference_matrix(self, running: Sequence[Job]) -> Dict[Tuple[str, str], int]:
        """Shared-link counts per job pair — who can interfere with whom."""
        links_of: Dict[str, set] = {
            job.job_id: set(self.fabric._flow_links.get(job.job_id, ())) for job in running
        }
        out: Dict[Tuple[str, str], int] = {}
        ids = sorted(links_of)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                shared = len(links_of[a] & links_of[b])
                if shared:
                    out[(a, b)] = shared
        return out
