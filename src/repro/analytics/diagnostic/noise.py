"""OS-noise detection (Ferreira et al. [57] style).

Identifies nodes whose kernel/daemon interference is pathological by
examining the context-switch counter fleet-wide: healthy nodes cluster
tightly; afflicted nodes sit orders of magnitude higher.  Reported per
node with an estimated stolen-cycles fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import InsufficientDataError
from repro.telemetry.store import TimeSeriesStore

__all__ = ["NoiseVerdict", "OsNoiseDetector"]

#: The counter model of the substrate: ctx = 200 + 50000 * noise.
_CTX_BASELINE = 200.0
_CTX_PER_NOISE = 50_000.0


@dataclass(frozen=True)
class NoiseVerdict:
    """Per-node noise assessment."""

    node: str
    median_ctx_switches: float
    estimated_noise_fraction: float
    noisy: bool


class OsNoiseDetector:
    """Fleet-relative OS-noise detector over context-switch telemetry.

    A node is flagged when its median context-switch rate exceeds the fleet
    median by ``mad_threshold`` robust deviations *and* its implied stolen-
    cycle fraction exceeds ``min_noise_fraction`` (protecting against
    flagging a tight fleet's mild spread).
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        mad_threshold: float = 5.0,
        min_noise_fraction: float = 0.01,
    ):
        self.store = store
        self.mad_threshold = mad_threshold
        self.min_noise_fraction = min_noise_fraction

    def assess(
        self, node_metric_paths: Dict[str, str], since: float, until: float
    ) -> List[NoiseVerdict]:
        """Assess each node; ``node_metric_paths`` maps node -> ctx metric."""
        medians: Dict[str, float] = {}
        for node, path in node_metric_paths.items():
            _, values = self.store.query(path, since, until)
            values = values[np.isfinite(values)]
            if values.size == 0:
                continue
            medians[node] = float(np.median(values))
        if len(medians) < 3:
            raise InsufficientDataError("need ctx-switch data for >= 3 nodes")

        from repro.analytics.common import robust_scale

        fleet = np.array(list(medians.values()))
        fleet_median = np.median(fleet)
        mad = robust_scale(fleet) or 1.0

        verdicts = []
        for node, median in sorted(medians.items()):
            deviation = (median - fleet_median) / mad
            estimated = max((median - _CTX_BASELINE) / _CTX_PER_NOISE, 0.0)
            noisy = deviation > self.mad_threshold and estimated > self.min_noise_fraction
            verdicts.append(
                NoiseVerdict(
                    node=node,
                    median_ctx_switches=median,
                    estimated_noise_fraction=estimated,
                    noisy=noisy,
                )
            )
        return verdicts

    def noisy_nodes(
        self, node_metric_paths: Dict[str, str], since: float, until: float
    ) -> List[str]:
        """Just the names of flagged nodes."""
        return [v.node for v in self.assess(node_metric_paths, since, until) if v.noisy]
