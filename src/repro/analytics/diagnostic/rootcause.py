"""Root-cause analysis over telemetry and the event trace.

AutoDiagn-style diagnosis [9]: when a symptom metric misbehaves, rank
candidate cause metrics by (a) abnormal deviation in the symptom window
and (b) temporal precedence (the cause deviated first), then walk the
component hierarchy to name a culprit.  Also correlates symptoms with trace
events (faults, job starts) that immediately precede them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InsufficientDataError
from repro.simulation.trace import TraceLog, TraceRecord
from repro.telemetry.store import TimeSeriesStore

__all__ = ["CauseCandidate", "RootCauseAnalyzer"]


@dataclass(frozen=True)
class CauseCandidate:
    """One ranked potential cause of a symptom."""

    metric: str
    score: float
    deviation: float
    lead_s: float  # positive: deviated before the symptom did

    @property
    def component(self) -> str:
        return self.metric.rpartition(".")[0]


class RootCauseAnalyzer:
    """Correlation-and-precedence RCA over a time-series store.

    Parameters
    ----------
    store:
        The telemetry archive.
    baseline_s:
        Length of the healthy reference window immediately before the
        symptom window.
    step:
        Alignment resolution.
    """

    def __init__(self, store: TimeSeriesStore, baseline_s: float = 3600.0, step: float = 60.0):
        self.store = store
        self.baseline_s = baseline_s
        self.step = step

    # ------------------------------------------------------------------
    def _deviation_profile(
        self, metric: str, symptom_start: float, symptom_end: float
    ) -> Tuple[float, float]:
        """(deviation strength, first deviation time) for one metric.

        Deviation is measured in baseline robust-z units; the first time the
        series leaves the +-3 MAD band marks its onset.
        """
        base_t, base_v = self.store.query(
            metric, symptom_start - self.baseline_s, symptom_start
        )
        sym_t, sym_v = self.store.query(metric, symptom_start - self.baseline_s, symptom_end)
        base_v = base_v[np.isfinite(base_v)]
        if base_v.size < 5 or sym_t.size == 0:
            raise InsufficientDataError(f"{metric}: not enough data for RCA")
        median = np.median(base_v)
        mad = 1.4826 * np.median(np.abs(base_v - median))
        if mad == 0:
            mad = base_v.std() or 1.0
        z = np.abs(sym_v - median) / mad
        window_mask = sym_t >= symptom_start
        deviation = float(z[window_mask].mean()) if window_mask.any() else 0.0
        breach = np.nonzero(z > 3.0)[0]
        onset = float(sym_t[breach[0]]) if breach.size else float("inf")
        return deviation, onset

    def rank_causes(
        self,
        symptom_metric: str,
        symptom_start: float,
        symptom_end: float,
        candidate_metrics: Sequence[str],
        top: int = 5,
    ) -> List[CauseCandidate]:
        """Rank candidate metrics as causes of the symptom.

        Score = deviation strength x precedence bonus.  Candidates that
        never deviate score zero and are dropped.
        """
        try:
            _, symptom_onset = self._deviation_profile(
                symptom_metric, symptom_start, symptom_end
            )
        except InsufficientDataError:
            symptom_onset = symptom_start
        if not np.isfinite(symptom_onset):
            symptom_onset = symptom_start

        candidates: List[CauseCandidate] = []
        for metric in candidate_metrics:
            if metric == symptom_metric:
                continue
            try:
                deviation, onset = self._deviation_profile(
                    metric, symptom_start, symptom_end
                )
            except InsufficientDataError:
                continue
            if deviation <= 0.5 or not np.isfinite(onset):
                continue
            lead = symptom_onset - onset
            precedence = 1.0 + max(np.tanh(lead / self.baseline_s), -0.5)
            candidates.append(
                CauseCandidate(
                    metric=metric,
                    score=deviation * precedence,
                    deviation=deviation,
                    lead_s=lead,
                )
            )
        candidates.sort(key=lambda c: -c.score)
        return candidates[:top]

    # ------------------------------------------------------------------
    @staticmethod
    def preceding_events(
        trace: TraceLog,
        symptom_start: float,
        lookback_s: float = 3600.0,
        kinds: Optional[Sequence[str]] = None,
    ) -> List[TraceRecord]:
        """Trace events in the lookback window before the symptom, newest first.

        Feeding the operator "what changed right before this" is often the
        fastest diagnosis of all.
        """
        records = trace.select(since=symptom_start - lookback_s, until=symptom_start)
        if kinds is not None:
            allowed = set(kinds)
            records = [r for r in records if r.kind in allowed]
        return sorted(records, key=lambda r: -r.time)
