"""Software anomaly detection: memory leaks and CPU contention.

The Table I software-pillar diagnostics (Tuncer et al. [16]): detect
software-level pathologies from their telemetry shapes rather than from
hardware faults —

* **memory leak**: monotone growth of memory occupancy with a significant
  positive slope sustained over the window,
* **CPU contention / interference**: utilization demand stays high while
  achieved progress indicators (IPC, FLOPS) degrade relative to the job's
  own early-window baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import InsufficientDataError
from repro.telemetry.store import TimeSeriesStore

__all__ = ["SoftwareAnomaly", "MemoryLeakDetector", "CpuContentionDetector"]


@dataclass(frozen=True)
class SoftwareAnomaly:
    """One detected software-level pathology."""

    kind: str
    entity: str
    severity: float
    evidence: str


class MemoryLeakDetector:
    """Flags sustained monotone growth in memory occupancy.

    Fits a robust (Theil-Sen over subsampled pairs) slope to the occupancy
    series; a leak verdict requires (a) slope above ``min_slope_per_hour``
    and (b) Spearman-like monotonicity above ``min_monotonicity``.
    """

    def __init__(self, min_slope_per_hour: float = 0.01, min_monotonicity: float = 0.8):
        self.min_slope_per_hour = min_slope_per_hour
        self.min_monotonicity = min_monotonicity

    @staticmethod
    def _theil_sen(times: np.ndarray, values: np.ndarray, max_pairs: int = 2000) -> float:
        n = times.size
        if n < 3:
            raise InsufficientDataError("need >= 3 samples for a slope")
        rng = np.random.default_rng(0)
        if n * (n - 1) // 2 <= max_pairs:
            i, j = np.triu_indices(n, k=1)
        else:
            i = rng.integers(0, n, size=max_pairs)
            j = rng.integers(0, n, size=max_pairs)
            keep = i != j
            i, j = i[keep], j[keep]
        dt = times[j] - times[i]
        valid = dt != 0
        slopes = (values[j][valid] - values[i][valid]) / dt[valid]
        return float(np.median(slopes))

    @staticmethod
    def _monotonicity(values: np.ndarray) -> float:
        """Fraction of consecutive steps that do not decrease (in [0, 1])."""
        deltas = np.diff(values)
        if deltas.size == 0:
            return 0.0
        return float((deltas >= 0).mean())

    def check(
        self, store: TimeSeriesStore, metric: str, since: float, until: float,
        entity: Optional[str] = None,
    ) -> Optional[SoftwareAnomaly]:
        """Returns an anomaly record if the series leaks, else None."""
        times, values = store.query(metric, since, until)
        finite = np.isfinite(values)
        times, values = times[finite], values[finite]
        if times.size < 5:
            raise InsufficientDataError(f"{metric}: need >= 5 samples")
        slope_per_hour = self._theil_sen(times, values) * 3600.0
        monotonicity = self._monotonicity(values)
        if slope_per_hour >= self.min_slope_per_hour and monotonicity >= self.min_monotonicity:
            return SoftwareAnomaly(
                kind="memory_leak",
                entity=entity or metric,
                severity=slope_per_hour,
                evidence=(
                    f"occupancy grows {slope_per_hour:.3f}/h with "
                    f"{monotonicity:.0%} monotone steps"
                ),
            )
        return None


class CpuContentionDetector:
    """Flags demand-vs-achievement divergence (interference signature).

    Compares the late fraction of the window with the early fraction: if
    CPU demand holds while the achievement signal (IPC) drops by more than
    ``min_drop`` relatively, interference is diagnosed.
    """

    def __init__(self, min_drop: float = 0.15, min_util: float = 0.5):
        self.min_drop = min_drop
        self.min_util = min_util

    def check(
        self,
        store: TimeSeriesStore,
        util_metric: str,
        ipc_metric: str,
        since: float,
        until: float,
        entity: Optional[str] = None,
    ) -> Optional[SoftwareAnomaly]:
        _, util = store.query(util_metric, since, until)
        _, ipc = store.query(ipc_metric, since, until)
        n = min(util.size, ipc.size)
        if n < 6:
            raise InsufficientDataError("need >= 6 aligned samples")
        util, ipc = util[:n], ipc[:n]
        third = n // 3
        early_ipc = float(np.median(ipc[:third]))
        late_ipc = float(np.median(ipc[-third:]))
        late_util = float(np.median(util[-third:]))
        if early_ipc <= 0:
            return None
        drop = (early_ipc - late_ipc) / early_ipc
        if late_util >= self.min_util and drop >= self.min_drop:
            return SoftwareAnomaly(
                kind="cpu_contention",
                entity=entity or ipc_metric,
                severity=drop,
                evidence=(
                    f"IPC fell {drop:.0%} (from {early_ipc:.2f} to {late_ipc:.2f}) "
                    f"while utilization held at {late_util:.0%}"
                ),
            )
        return None
