"""Diagnostic analytics — "why did it happen?" (Table I, second row).

Node-level anomaly detection (statistical, PCA-reconstruction, residual
subspace, peer deviation, isolation forest), root-cause analysis,
application and crisis fingerprinting, from-scratch supervised
classifiers, network-contention diagnosis, OS-noise detection and
software anomaly detection.
"""

from repro.analytics.diagnostic.anomaly import (
    Detection,
    EwmaDetector,
    PcaReconstructionDetector,
    PeerDeviationDetector,
    SubspaceDetector,
    ZScoreDetector,
    detection_metrics,
)
from repro.analytics.diagnostic.classifiers import (
    DecisionTreeClassifier,
    GaussianNaiveBayes,
    KNeighborsClassifier,
    RandomForestClassifier,
    accuracy,
    confusion_matrix,
    f1_score,
)
from repro.analytics.diagnostic.fingerprint import (
    JOB_COUNTERS,
    ApplicationFingerprinter,
    CrisisFingerprint,
    CrisisLibrary,
    job_feature_vector,
)
from repro.analytics.diagnostic.forest import IsolationForest
from repro.analytics.diagnostic.network_diag import (
    ContentionIncident,
    NetworkDiagnostician,
)
from repro.analytics.diagnostic.noise import NoiseVerdict, OsNoiseDetector
from repro.analytics.diagnostic.rootcause import CauseCandidate, RootCauseAnalyzer
from repro.analytics.diagnostic.software_anomaly import (
    CpuContentionDetector,
    MemoryLeakDetector,
    SoftwareAnomaly,
)

__all__ = [
    "Detection",
    "EwmaDetector",
    "PcaReconstructionDetector",
    "PeerDeviationDetector",
    "SubspaceDetector",
    "ZScoreDetector",
    "detection_metrics",
    "DecisionTreeClassifier",
    "GaussianNaiveBayes",
    "KNeighborsClassifier",
    "RandomForestClassifier",
    "accuracy",
    "confusion_matrix",
    "f1_score",
    "JOB_COUNTERS",
    "ApplicationFingerprinter",
    "CrisisFingerprint",
    "CrisisLibrary",
    "job_feature_vector",
    "IsolationForest",
    "ContentionIncident",
    "NetworkDiagnostician",
    "NoiseVerdict",
    "OsNoiseDetector",
    "CauseCandidate",
    "RootCauseAnalyzer",
    "CpuContentionDetector",
    "MemoryLeakDetector",
    "SoftwareAnomaly",
]
