"""From-scratch supervised classifiers on NumPy.

The diagnostic works the paper surveys lean on standard supervised models
(random forests in Taxonomist [33], kNN/tree ensembles in Tuncer et
al. [16], naive Bayes in DeMasi et al. [36]).  No ML stack is available
offline, so the models are implemented here directly: kNN, Gaussian naive
Bayes, CART decision trees and a bagged random forest — small, vectorized
and adequate at substrate scale.

All classifiers share the fit/predict protocol with integer class labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InsufficientDataError, NotFittedError

__all__ = [
    "KNeighborsClassifier",
    "GaussianNaiveBayes",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "accuracy",
    "confusion_matrix",
    "f1_score",
]


def _validate_xy(X: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
        raise InsufficientDataError("X must be (n, d) and y (n,) with matching n")
    if X.shape[0] == 0:
        raise InsufficientDataError("empty training set")
    return X, y


class KNeighborsClassifier:
    """k-nearest-neighbours with Euclidean distance and majority vote."""

    def __init__(self, k: int = 5):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        self._X, self._y = _validate_xy(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise NotFittedError("fit was never called")
        X = np.asarray(X, dtype=np.float64)
        k = min(self.k, self._X.shape[0])
        # Vectorized pairwise distances: (m, n).
        d2 = ((X[:, None, :] - self._X[None, :, :]) ** 2).sum(axis=2)
        neighbor_idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
        votes = self._y[neighbor_idx]
        out = np.empty(X.shape[0], dtype=np.int64)
        for i in range(X.shape[0]):
            labels, counts = np.unique(votes[i], return_counts=True)
            out[i] = labels[counts.argmax()]
        return out


class GaussianNaiveBayes:
    """Naive Bayes with per-class diagonal Gaussian likelihoods."""

    def __init__(self, var_smoothing: float = 1e-9):
        self.var_smoothing = var_smoothing
        self.classes_: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._var: Optional[np.ndarray] = None
        self._log_prior: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        X, y = _validate_xy(X, y)
        self.classes_ = np.unique(y)
        means, variances, priors = [], [], []
        max_var = X.var(axis=0).max() or 1.0
        for c in self.classes_:
            rows = X[y == c]
            means.append(rows.mean(axis=0))
            variances.append(rows.var(axis=0) + self.var_smoothing * max_var)
            priors.append(rows.shape[0] / X.shape[0])
        self._mean = np.array(means)
        self._var = np.array(variances)
        self._log_prior = np.log(np.array(priors))
        return self

    def predict_log_proba(self, X: np.ndarray) -> np.ndarray:
        if self._mean is None:
            raise NotFittedError("fit was never called")
        X = np.asarray(X, dtype=np.float64)
        # (m, classes): sum of per-feature log densities.
        diff = X[:, None, :] - self._mean[None, :, :]
        log_likelihood = -0.5 * (
            np.log(2 * np.pi * self._var[None, :, :]) + diff**2 / self._var[None, :, :]
        ).sum(axis=2)
        return log_likelihood + self._log_prior[None, :]

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[self.predict_log_proba(X).argmax(axis=1)]


@dataclass
class _TreeNode:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None
    label: int = -1

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(y: np.ndarray) -> float:
    _, counts = np.unique(y, return_counts=True)
    p = counts / y.size
    return float(1.0 - (p**2).sum())


class DecisionTreeClassifier:
    """CART tree with Gini impurity and midpoint thresholds."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        max_features: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.rng = rng
        self._root: Optional[_TreeNode] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X, y = _validate_xy(X, y)
        self._root = self._build(X, y, depth=0)
        return self

    def _majority(self, y: np.ndarray) -> int:
        labels, counts = np.unique(y, return_counts=True)
        return int(labels[counts.argmax()])

    def _candidate_features(self, d: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= d:
            return np.arange(d)
        if self.rng is None:
            return np.arange(self.max_features)
        return self.rng.choice(d, size=self.max_features, replace=False)

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        if (
            depth >= self.max_depth
            or y.size < self.min_samples_split
            or np.unique(y).size == 1
        ):
            return _TreeNode(label=self._majority(y))

        best = (None, None, np.inf)  # feature, threshold, impurity
        parent_impurity = _gini(y)
        for feature in self._candidate_features(X.shape[1]):
            column = X[:, feature]
            values = np.unique(column)
            if values.size < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            # Cap candidate thresholds to keep fitting cheap at scale.
            if thresholds.size > 32:
                thresholds = np.quantile(column, np.linspace(0.05, 0.95, 32))
            for threshold in thresholds:
                mask = column <= threshold
                n_left = int(mask.sum())
                if n_left == 0 or n_left == y.size:
                    continue
                impurity = (
                    n_left * _gini(y[mask]) + (y.size - n_left) * _gini(y[~mask])
                ) / y.size
                if impurity < best[2]:
                    best = (int(feature), float(threshold), impurity)

        if best[0] is None or best[2] >= parent_impurity:
            return _TreeNode(label=self._majority(y))

        feature, threshold, _ = best
        mask = X[:, feature] <= threshold
        return _TreeNode(
            feature=feature,
            threshold=threshold,
            left=self._build(X[mask], y[mask], depth + 1),
            right=self._build(X[~mask], y[~mask], depth + 1),
            label=self._majority(y),
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise NotFittedError("fit was never called")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(X.shape[0], dtype=np.int64)
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.label
        return out


class RandomForestClassifier:
    """Bagged CART trees with feature subsampling and majority vote."""

    def __init__(
        self,
        n_trees: int = 20,
        max_depth: int = 8,
        max_features: Optional[int] = None,
        seed: int = 0,
    ):
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.max_features = max_features
        self.seed = seed
        self._trees: List[DecisionTreeClassifier] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X, y = _validate_xy(X, y)
        rng = np.random.default_rng(self.seed)
        max_features = self.max_features or max(1, int(np.sqrt(X.shape[1])))
        self._trees = []
        for _ in range(self.n_trees):
            idx = rng.integers(0, X.shape[0], size=X.shape[0])  # bootstrap
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                max_features=max_features,
                rng=rng,
            )
            tree.fit(X[idx], y[idx])
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise NotFittedError("fit was never called")
        votes = np.stack([tree.predict(X) for tree in self._trees])
        out = np.empty(votes.shape[1], dtype=np.int64)
        for i in range(votes.shape[1]):
            labels, counts = np.unique(votes[:, i], return_counts=True)
            out[i] = labels[counts.argmax()]
        return out


# ----------------------------------------------------------------------
# Evaluation helpers
# ----------------------------------------------------------------------
def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> np.ndarray:
    """Counts[i, j] = samples of true class i predicted as class j."""
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    for t, p in zip(np.asarray(y_true), np.asarray(y_pred)):
        matrix[int(t), int(p)] += 1
    return matrix


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1) -> float:
    """Binary F1 for the given positive label."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    tp = int(((y_true == positive) & (y_pred == positive)).sum())
    fp = int(((y_true != positive) & (y_pred == positive)).sum())
    fn = int(((y_true == positive) & (y_pred != positive)).sum())
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)
