"""Unsupervised anomaly detectors for node-level telemetry.

The diagnostic hardware use case of Table I ("node-level anomaly detection"
[17][26][47]) with three complementary detectors:

* :class:`ZScoreDetector` — univariate rolling z-score/EWMA baseline.
* :class:`PcaReconstructionDetector` — multivariate reconstruction error
  against a PCA model of healthy operation; the stand-in for the
  semi-supervised autoencoder of Borghesi et al. [17].
* :class:`SubspaceDetector` — Guan & Fu [26]-style: anomalies live in the
  *residual* subspace; score = energy outside the principal components.
* :class:`PeerDeviationDetector` — cross-sectional: a node is anomalous if
  it strays from its peers doing the same work (the symmetry argument HPC
  fleets enable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analytics.common import StandardScaler
from repro.analytics.descriptive.reduction import PCA
from repro.errors import InsufficientDataError, NotFittedError

__all__ = [
    "Detection",
    "ZScoreDetector",
    "EwmaDetector",
    "PcaReconstructionDetector",
    "SubspaceDetector",
    "PeerDeviationDetector",
    "detection_metrics",
]


@dataclass(frozen=True)
class Detection:
    """One flagged interval/entity with its score."""

    entity: str
    index: int
    score: float


class ZScoreDetector:
    """Rolling z-score on a single series; flags |z| > threshold."""

    def __init__(self, window: int = 60, threshold: float = 4.0):
        if window < 3:
            raise ValueError("window must be >= 3")
        self.window = window
        self.threshold = threshold

    def score(self, values: np.ndarray) -> np.ndarray:
        """|z| of each sample against the trailing window statistics."""
        values = np.asarray(values, dtype=np.float64)
        if values.size < self.window + 1:
            raise InsufficientDataError(
                f"need > {self.window} samples, got {values.size}"
            )
        out = np.zeros(values.size)
        # Cumulative sums give O(n) rolling mean/std.
        csum = np.concatenate([[0.0], np.cumsum(values)])
        csum2 = np.concatenate([[0.0], np.cumsum(values**2)])
        for i in range(self.window, values.size):
            lo = i - self.window
            n = self.window
            mean = (csum[i] - csum[lo]) / n
            var = max((csum2[i] - csum2[lo]) / n - mean**2, 0.0)
            std = np.sqrt(var)
            out[i] = abs(values[i] - mean) / std if std > 0 else 0.0
        return out

    def detect(self, values: np.ndarray) -> np.ndarray:
        """Boolean anomaly mask."""
        return self.score(values) > self.threshold


class EwmaDetector:
    """Exponentially-weighted moving average control chart."""

    def __init__(self, alpha: float = 0.1, threshold: float = 4.0, warmup: int = 10):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.threshold = threshold
        self.warmup = warmup

    def score(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.size < 3:
            raise InsufficientDataError("need >= 3 samples")
        z = np.zeros_like(values)
        ewma = values[0]
        ewvar = 0.0
        a = self.alpha
        for i in range(1, values.size):
            # Score against the *previous* state so a spike cannot inflate
            # the variance it is judged by (standard control-chart order).
            # The warmup period is never scored: the chart has no variance
            # estimate yet.
            std = np.sqrt(ewvar)
            if i >= self.warmup:
                with np.errstate(divide="ignore", invalid="ignore"):
                    z[i] = abs(values[i] - ewma) / std if std > 0 else (
                        np.inf if values[i] != ewma else 0.0
                    )
            delta = values[i] - ewma
            ewma += a * delta
            ewvar = (1 - a) * (ewvar + a * delta**2)
        # A deviation from a variance-free baseline is infinitely surprising;
        # clamp to a large finite score rather than suppressing it.
        return np.nan_to_num(z, nan=0.0, posinf=1e9)

    def detect(self, values: np.ndarray) -> np.ndarray:
        return self.score(values) > self.threshold


class PcaReconstructionDetector:
    """Semi-supervised multivariate detector (autoencoder stand-in [17]).

    Fit on healthy-operation feature rows; the anomaly score of a new row
    is its PCA reconstruction error, thresholded at a quantile of the
    training errors.
    """

    def __init__(self, n_components: int = 3, quantile: float = 0.99):
        self.n_components = n_components
        self.quantile = quantile
        self.scaler = StandardScaler()
        self.pca: Optional[PCA] = None
        self.threshold_: Optional[float] = None

    def fit(self, X_healthy: np.ndarray) -> "PcaReconstructionDetector":
        X = self.scaler.fit_transform(np.asarray(X_healthy, dtype=np.float64))
        n_components = min(self.n_components, X.shape[1], X.shape[0] - 1)
        self.pca = PCA(n_components).fit(X)
        errors = self.pca.reconstruction_error(X)
        self.threshold_ = float(np.quantile(errors, self.quantile))
        return self

    def score(self, X: np.ndarray) -> np.ndarray:
        if self.pca is None or self.threshold_ is None:
            raise NotFittedError("fit was never called")
        return self.pca.reconstruction_error(self.scaler.transform(X))

    def detect(self, X: np.ndarray) -> np.ndarray:
        return self.score(X) > self.threshold_


class SubspaceDetector:
    """Residual-subspace detector (Guan & Fu [26]).

    Projects observations onto the residual of the top-k principal subspace
    of healthy data; the squared residual energy is the anomaly score
    (classic SPE / Q-statistic formulation).
    """

    def __init__(self, n_components: int = 3, quantile: float = 0.99):
        self.n_components = n_components
        self.quantile = quantile
        self.scaler = StandardScaler()
        self._components: Optional[np.ndarray] = None
        self.threshold_: Optional[float] = None

    def fit(self, X_healthy: np.ndarray) -> "SubspaceDetector":
        X = self.scaler.fit_transform(np.asarray(X_healthy, dtype=np.float64))
        k = min(self.n_components, X.shape[1], X.shape[0] - 1)
        pca = PCA(k).fit(X)
        self._components = pca.components_
        spe = self._spe(X)
        self.threshold_ = float(np.quantile(spe, self.quantile))
        return self

    def _spe(self, X: np.ndarray) -> np.ndarray:
        projected = X @ self._components.T @ self._components
        residual = X - projected
        return (residual**2).sum(axis=1)

    def score(self, X: np.ndarray) -> np.ndarray:
        if self._components is None:
            raise NotFittedError("fit was never called")
        return self._spe(self.scaler.transform(X))

    def detect(self, X: np.ndarray) -> np.ndarray:
        return self.score(X) > self.threshold_


class PeerDeviationDetector:
    """Cross-sectional detector: flag entities far from the peer median.

    Given a matrix ``(entities, features)`` captured at one instant from
    nodes running comparable work, an entity's score is the robust distance
    of its row from the column-wise median in MAD units, averaged over
    features.  No training phase — the fleet is its own baseline.
    """

    def __init__(self, threshold: float = 4.0):
        self.threshold = threshold

    def score(self, matrix: np.ndarray) -> np.ndarray:
        from repro.analytics.common import robust_scale

        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] < 3:
            raise InsufficientDataError("need >= 3 peer entities")
        median = np.median(matrix, axis=0)
        scale = np.array([robust_scale(matrix[:, j]) for j in range(matrix.shape[1])])
        scale[scale == 0] = np.inf  # truly constant columns carry no signal
        z = np.abs(matrix - median) / scale
        return z.mean(axis=1)

    def detect(
        self, matrix: np.ndarray, entities: Sequence[str]
    ) -> List[Detection]:
        scores = self.score(matrix)
        return [
            Detection(entity=entities[i], index=i, score=float(s))
            for i, s in enumerate(scores)
            if s > self.threshold
        ]


def detection_metrics(
    truth: np.ndarray, predicted: np.ndarray
) -> Dict[str, float]:
    """Precision / recall / F1 for boolean anomaly masks."""
    truth = np.asarray(truth, dtype=bool)
    predicted = np.asarray(predicted, dtype=bool)
    tp = int((truth & predicted).sum())
    fp = int((~truth & predicted).sum())
    fn = int((truth & ~predicted).sum())
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return {"precision": precision, "recall": recall, "f1": f1,
            "tp": float(tp), "fp": float(fp), "fn": float(fn)}
