"""Fingerprinting: applications and data-center crises.

Two Table I diagnostic use cases built on the same idea — summarize a
multivariate window into a compact signature, then match signatures:

* **Application fingerprinting** (Taxonomist [33], DeMasi et al. [36]):
  per-job statistical features over node telemetry, classified into
  application labels; flags unknown/rogue workloads (cryptominers) when
  the classifier's confidence is low or the predicted label is the miner
  class.
* **Crisis fingerprinting** (Bodik et al. [38]): a data-center-wide
  incident is summarized as the vector of per-metric deviation quantiles;
  known crises are matched by nearest fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analytics.common import FEATURE_NAMES, StandardScaler, summary_features
from repro.analytics.diagnostic.classifiers import RandomForestClassifier
from repro.errors import InsufficientDataError, NotFittedError
from repro.telemetry.store import TimeSeriesStore

__all__ = [
    "job_feature_vector",
    "ApplicationFingerprinter",
    "CrisisFingerprint",
    "CrisisLibrary",
]

#: Node counters consumed by the application fingerprinter, in order.
JOB_COUNTERS: Tuple[str, ...] = (
    "cpu_util", "mem_bw_util", "io_bw", "net_bw", "flops", "ipc",
)


def job_feature_vector(
    store: TimeSeriesStore,
    node_metric_paths: Dict[str, str],
    since: float,
    until: float,
) -> np.ndarray:
    """Taxonomist-style feature vector for one job execution window.

    ``node_metric_paths`` maps each counter name in :data:`JOB_COUNTERS` to
    a store metric path (typically one representative node of the job).
    The vector concatenates :func:`summary_features` of each counter.
    """
    chunks = []
    for counter in JOB_COUNTERS:
        path = node_metric_paths[counter]
        _, values = store.query(path, since, until)
        if values.size == 0:
            raise InsufficientDataError(f"no samples for {path} in job window")
        chunks.append(summary_features(values))
    return np.concatenate(chunks)


class ApplicationFingerprinter:
    """Supervised application classifier over job feature vectors.

    Labels are application names; fit on historical labelled jobs, then
    identify new jobs.  ``min_votes`` implements the rogue-workload check:
    a prediction is "confident" only when enough trees agree (proxy for
    the calibrated confidence Taxonomist uses).
    """

    def __init__(self, n_trees: int = 30, seed: int = 0):
        self.scaler = StandardScaler()
        self.forest = RandomForestClassifier(n_trees=n_trees, max_depth=10, seed=seed)
        self.labels_: List[str] = []

    def fit(self, X: np.ndarray, labels: Sequence[str]) -> "ApplicationFingerprinter":
        X = np.asarray(X, dtype=np.float64)
        self.labels_ = sorted(set(labels))
        index = {label: i for i, label in enumerate(self.labels_)}
        y = np.array([index[label] for label in labels])
        self.forest.fit(self.scaler.fit_transform(X), y)
        return self

    def predict(self, X: np.ndarray) -> List[str]:
        if not self.labels_:
            raise NotFittedError("fit was never called")
        y = self.forest.predict(self.scaler.transform(np.asarray(X, dtype=np.float64)))
        return [self.labels_[i] for i in y]

    def flag_rogue(self, X: np.ndarray, rogue_label: str = "cryptominer") -> List[bool]:
        """True per row if the job is identified as the rogue class."""
        return [label == rogue_label for label in self.predict(X)]


@dataclass(frozen=True)
class CrisisFingerprint:
    """Bodik-style fingerprint: per-metric deviation summary of an incident."""

    name: str
    vector: np.ndarray
    metrics: Tuple[str, ...]


class CrisisLibrary:
    """Library of labelled crisis fingerprints with nearest matching.

    The fingerprint of a window is, per metric, the (p25, p50, p95) of the
    robust deviation from a healthy baseline — the compact representation
    Bodik et al. found sufficient to discriminate operational crises.
    """

    def __init__(self, store: TimeSeriesStore, metrics: Sequence[str], baseline_s: float = 3600.0):
        if not metrics:
            raise InsufficientDataError("crisis library needs at least one metric")
        self.store = store
        self.metrics = tuple(metrics)
        self.baseline_s = baseline_s
        self._library: List[CrisisFingerprint] = []

    # ------------------------------------------------------------------
    def fingerprint(self, name: str, since: float, until: float) -> CrisisFingerprint:
        """Fingerprint a window against the baseline immediately before it."""
        chunks = []
        for metric in self.metrics:
            _, base = self.store.query(metric, since - self.baseline_s, since)
            _, window = self.store.query(metric, since, until)
            base = base[np.isfinite(base)]
            window = window[np.isfinite(window)]
            if base.size < 5 or window.size < 3:
                chunks.append(np.zeros(3))
                continue
            median = np.median(base)
            mad = 1.4826 * np.median(np.abs(base - median)) or (base.std() or 1.0)
            z = (window - median) / mad
            chunks.append(np.percentile(z, [25, 50, 95]))
        return CrisisFingerprint(name=name, vector=np.concatenate(chunks), metrics=self.metrics)

    def learn(self, name: str, since: float, until: float) -> CrisisFingerprint:
        """Fingerprint a labelled incident and store it in the library."""
        fp = self.fingerprint(name, since, until)
        self._library.append(fp)
        return fp

    def identify(self, since: float, until: float) -> List[Tuple[str, float]]:
        """Match an unlabelled window against the library.

        Returns (crisis name, similarity) sorted by decreasing similarity,
        where similarity is ``1 / (1 + euclidean distance)``.
        """
        if not self._library:
            raise NotFittedError("crisis library is empty")
        probe = self.fingerprint("?", since, until)
        matches = []
        for fp in self._library:
            distance = float(np.linalg.norm(probe.vector - fp.vector))
            matches.append((fp.name, 1.0 / (1.0 + distance)))
        matches.sort(key=lambda m: -m[1])
        return matches

    @property
    def known_crises(self) -> List[str]:
        return [fp.name for fp in self._library]
