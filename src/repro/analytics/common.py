"""Shared analytics utilities: windows, features, scaling, evaluation splits.

These helpers implement the data-preparation steps the paper lists under
descriptive analytics ("normalization, aggregation, outlier removal and
dimensionality reduction") in vectorized NumPy form, shared by every
analytics type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InsufficientDataError, NotFittedError

__all__ = [
    "sliding_windows",
    "lag_matrix",
    "train_test_split_time",
    "StandardScaler",
    "summary_features",
    "robust_scale",
    "FEATURE_NAMES",
]


def robust_scale(values: np.ndarray) -> float:
    """Robust dispersion estimate with graceful degradation.

    Primary: scaled MAD (1.4826 x median absolute deviation).  On
    quantized data where most samples are identical the MAD collapses to
    zero, so fall back to the scaled *mean* absolute deviation, then the
    standard deviation.  Returns 0.0 only for truly constant data.
    """
    values = np.asarray(values, dtype=np.float64)
    values = values[np.isfinite(values)]
    if values.size < 2:
        return 0.0
    deviations = np.abs(values - np.median(values))
    mad = 1.4826 * float(np.median(deviations))
    if mad > 0:
        return mad
    mean_ad = 1.4826 * float(deviations.mean())
    if mean_ad > 0:
        return mean_ad
    return float(values.std())


def sliding_windows(values: np.ndarray, width: int, step: int = 1) -> np.ndarray:
    """Overlapping windows as a zero-copy strided view.

    Returns an array of shape ``(n_windows, width)``.  The result is a view;
    do not mutate it.
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    if width < 1 or step < 1:
        raise ValueError("width and step must be >= 1")
    if values.size < width:
        raise InsufficientDataError(
            f"need at least {width} samples for one window, got {values.size}"
        )
    n = (values.size - width) // step + 1
    stride = values.strides[0]
    return np.lib.stride_tricks.as_strided(
        values, shape=(n, width), strides=(stride * step, stride), writeable=False
    )


def lag_matrix(values: np.ndarray, lags: int) -> Tuple[np.ndarray, np.ndarray]:
    """Design matrix of lagged values for autoregressive models.

    Returns ``(X, y)`` where ``X[i] = values[i : i+lags]`` and
    ``y[i] = values[i+lags]``.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size <= lags:
        raise InsufficientDataError(
            f"need more than {lags} samples, got {values.size}"
        )
    windows = sliding_windows(values, lags + 1)
    return windows[:, :-1], windows[:, -1]


def train_test_split_time(
    values: np.ndarray, test_fraction: float = 0.25
) -> Tuple[np.ndarray, np.ndarray]:
    """Chronological split: the past trains, the future tests.

    Never shuffles — shuffling leaks the future into the training set for
    autocorrelated telemetry.
    """
    values = np.asarray(values)
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    cut = int(round(values.shape[0] * (1.0 - test_fraction)))
    if cut == 0 or cut == values.shape[0]:
        raise InsufficientDataError("split leaves an empty partition")
    return values[:cut], values[cut:]


class StandardScaler:
    """Per-column standardization fitted on training data.

    Columns with zero variance are scaled by 1.0 (left centred only), which
    keeps constant sensors from exploding into NaNs.
    """

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.fit was never called")
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.fit was never called")
        return np.asarray(X, dtype=np.float64) * self.scale_ + self.mean_


#: Names of the statistical features produced by :func:`summary_features`.
FEATURE_NAMES: Tuple[str, ...] = (
    "mean", "std", "min", "max", "median", "p05", "p25", "p75", "p95", "skew",
)


def summary_features(series: np.ndarray) -> np.ndarray:
    """Taxonomist-style statistical summary of one telemetry series [33].

    Computes the feature vector (means, spread, percentiles, skew) used to
    fingerprint applications from their per-node time series.  NaNs are
    ignored; an all-NaN series yields zeros.
    """
    series = np.asarray(series, dtype=np.float64)
    series = series[np.isfinite(series)]
    if series.size == 0:
        return np.zeros(len(FEATURE_NAMES))
    percentiles = np.percentile(series, [5, 25, 50, 75, 95])
    std = float(series.std())
    if std > 0:
        skew = float(np.mean(((series - series.mean()) / std) ** 3))
    else:
        skew = 0.0
    return np.array(
        [
            series.mean(), std, series.min(), series.max(),
            percentiles[2], percentiles[0], percentiles[1],
            percentiles[3], percentiles[4], skew,
        ]
    )
