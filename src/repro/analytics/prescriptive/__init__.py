"""Prescriptive analytics — "what should be done?" (Table I, top row).

Control-loop primitives (PID, setpoint manager, audited control loops),
cooling setpoint optimization and technology switching, reactive and
proactive DVFS governors with power capping, power/energy-aware scheduling
policies, cooling/topology-aware placement, application auto-tuning and
code recommendations, and plan-based scheduling.
"""

from repro.analytics.prescriptive.autotune import (
    AnnealingTuner,
    GridSearchTuner,
    HillClimbTuner,
    RandomSearchTuner,
    TuningResult,
    TuningSpace,
)
from repro.analytics.prescriptive.control import (
    ControlAction,
    ControlLoop,
    PidController,
    SetpointManager,
)
from repro.analytics.prescriptive.cooling_opt import ModeSwitcher, SetpointOptimizer
from repro.analytics.prescriptive.maintenance import ProactiveMaintenance
from repro.analytics.prescriptive.dvfs import (
    PhasePredictor,
    PowerCapGovernor,
    ProactiveEnergyGovernor,
    ReactiveEnergyGovernor,
)
from repro.analytics.prescriptive.placement import (
    CoolingAwarePolicy,
    TopologyAwarePolicy,
)
from repro.analytics.prescriptive.planner import (
    ExecutionPlan,
    PlanBasedPolicy,
    PlannedStart,
    build_plan,
)
from repro.analytics.prescriptive.power_sched import (
    EnergyBudgetPolicy,
    PowerAwarePolicy,
)
from repro.analytics.prescriptive.recommend import CodeAdvisor, Recommendation

__all__ = [
    "AnnealingTuner",
    "GridSearchTuner",
    "HillClimbTuner",
    "RandomSearchTuner",
    "TuningResult",
    "TuningSpace",
    "ControlAction",
    "ControlLoop",
    "PidController",
    "SetpointManager",
    "ModeSwitcher",
    "SetpointOptimizer",
    "ProactiveMaintenance",
    "PhasePredictor",
    "PowerCapGovernor",
    "ProactiveEnergyGovernor",
    "ReactiveEnergyGovernor",
    "CoolingAwarePolicy",
    "TopologyAwarePolicy",
    "ExecutionPlan",
    "PlanBasedPolicy",
    "PlannedStart",
    "build_plan",
    "EnergyBudgetPolicy",
    "PowerAwarePolicy",
    "CodeAdvisor",
    "Recommendation",
]
