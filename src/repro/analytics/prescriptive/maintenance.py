"""Proactive maintenance: failure-prediction-driven node draining.

The paper's Section V-A claim — predictive capabilities upgrade a
prescriptive system from reactive to proactive with a positive KPI effect
— demonstrated on reliability (Sîrbu & Babaoglu's "proactive autonomics"
[48]):

* **Reactive** operation lets nodes crash mid-job; the job loses all its
  work and restarts from scratch.
* **Proactive** operation runs the
  :class:`~repro.analytics.predictive.failures.FailurePredictor` on the
  ECC telemetry; when a node shows the pre-crash ramp, its job is
  checkpoint-requeued and the node drained, so the crash hits an empty
  node.  Drained nodes return to service after repair.

The saved quantity is wasted node-work, directly measurable from the
scheduler's accounting — the KPI comparison of experiment D1.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analytics.predictive.failures import FailurePredictor
from repro.analytics.prescriptive.control import ControlAction, ControlLoop
from repro.cluster.system import HPCSystem
from repro.software.scheduler import Scheduler
from repro.telemetry.store import TimeSeriesStore

__all__ = ["ProactiveMaintenance"]


class ProactiveMaintenance:
    """Failure-prediction control loop over a scheduler + store.

    Parameters
    ----------
    scheduler / store:
        The software pillar and the telemetry archive.
    period:
        Scan period in seconds.
    ecc_rate_threshold:
        Warning threshold in ECC errors/hour (see FailurePredictor).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        store: TimeSeriesStore,
        period: float = 600.0,
        window_s: float = 1800.0,
        ecc_rate_threshold: float = 10.0,
    ):
        self.scheduler = scheduler
        self.store = store
        self.predictor = FailurePredictor(
            store, window_s=window_s, ecc_rate_threshold=ecc_rate_threshold
        )
        system: HPCSystem = scheduler.system
        self._ecc_paths: Dict[str, str] = {
            node.name: system.node_metric(node.name, "ecc_errors")
            for node in system.nodes
        }
        self.control_loop = ControlLoop(
            name="proactive_maintenance", decide=self._decide, period=period
        )
        self.drains = 0
        self.evacuations = 0

    def attach(self, sim, trace=None) -> None:
        self.control_loop.attach(sim, trace)

    # ------------------------------------------------------------------
    def _decide(self, now: float, recommend_only: bool) -> List[ControlAction]:
        actions: List[ControlAction] = []
        system: HPCSystem = self.scheduler.system

        # Return repaired nodes to service (restore() resets ECC to zero).
        for name in sorted(self.scheduler.drained):
            node = system.node(name)
            if node.up and node.ecc_errors == 0:
                if not recommend_only:
                    self.scheduler.undrain(name, now)
                actions.append(ControlAction(
                    now, self.control_loop.name, "undrain", 0.0, f"{name} repaired"
                ))

        # Drain nodes showing the pre-crash ECC ramp.
        for warning in self.predictor.warn(self._ecc_paths, now):
            if warning.node in self.scheduler.drained:
                continue
            if not system.node(warning.node).up:
                continue
            if recommend_only:
                actions.append(ControlAction(
                    now, self.control_loop.name, "drain", 1.0,
                    f"{warning.node}: ECC {warning.ecc_rate:.0f}/h (recommendation)",
                ))
                continue
            self.scheduler.drain(warning.node, now)
            self.drains += 1
            job_id = system.node(warning.node).job_id
            if job_id is not None:
                self.scheduler.requeue(job_id, now, keep_progress=True)
                self.evacuations += 1
            actions.append(ControlAction(
                now, self.control_loop.name, "drain", 1.0,
                f"{warning.node}: ECC ramp {warning.ecc_rate:.0f}/h, "
                f"job {job_id or 'none'} evacuated",
            ))
        return actions
