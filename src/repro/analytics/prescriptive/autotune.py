"""Application auto-tuning (Autotune [28], Active Harmony [29]).

Table I's application prescriptive cell: search an application's
configuration space for the settings optimizing a measured objective.
Search strategies — exhaustive grid, random, hill climbing and simulated
annealing — share a tiny interface so examples can compare them, exactly
the plugin structure of the surveyed frameworks.

The objective is any callable ``objective(config) -> float`` (lower is
better); in the benchmarks it is a simulated run's energy-delay product
under a (frequency, parallelism, blocking) configuration.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "TuningSpace",
    "TuningResult",
    "GridSearchTuner",
    "RandomSearchTuner",
    "HillClimbTuner",
    "AnnealingTuner",
]

Config = Dict[str, object]
Objective = Callable[[Config], float]


@dataclass(frozen=True)
class TuningSpace:
    """Discrete configuration space: parameter name -> allowed values."""

    parameters: Mapping[str, Tuple[object, ...]]

    def __post_init__(self) -> None:
        if not self.parameters:
            raise ConfigurationError("tuning space must have >= 1 parameter")
        for name, values in self.parameters.items():
            if not values:
                raise ConfigurationError(f"parameter {name} has no values")

    @property
    def size(self) -> int:
        size = 1
        for values in self.parameters.values():
            size *= len(values)
        return size

    def grid(self):
        """All configurations in deterministic order."""
        names = sorted(self.parameters)
        for combo in itertools.product(*(self.parameters[n] for n in names)):
            yield dict(zip(names, combo))

    def random_config(self, rng: np.random.Generator) -> Config:
        return {
            name: values[int(rng.integers(len(values)))]
            for name, values in sorted(self.parameters.items())
        }

    def neighbors(self, config: Config) -> List[Config]:
        """Configurations differing in exactly one parameter by one step."""
        out = []
        for name, values in sorted(self.parameters.items()):
            idx = list(values).index(config[name])
            for delta in (-1, 1):
                j = idx + delta
                if 0 <= j < len(values):
                    neighbor = dict(config)
                    neighbor[name] = values[j]
                    out.append(neighbor)
        return out


@dataclass
class TuningResult:
    """Outcome of a tuning run."""

    best_config: Config
    best_score: float
    evaluations: int
    history: List[Tuple[Config, float]] = field(default_factory=list)


class _BaseTuner:
    def __init__(self, space: TuningSpace, budget: int = 50):
        if budget < 1:
            raise ConfigurationError("budget must be >= 1")
        self.space = space
        self.budget = budget

    def _record(self, result: TuningResult, config: Config, score: float) -> None:
        result.history.append((config, score))
        result.evaluations += 1
        if score < result.best_score:
            result.best_score = score
            result.best_config = config


class GridSearchTuner(_BaseTuner):
    """Exhaustive sweep (budget-capped) — the reference optimum."""

    def tune(self, objective: Objective) -> TuningResult:
        result = TuningResult(best_config={}, best_score=float("inf"), evaluations=0)
        for config in itertools.islice(self.space.grid(), self.budget):
            self._record(result, config, objective(config))
        return result


class RandomSearchTuner(_BaseTuner):
    """Uniform random sampling — the canonical cheap baseline."""

    def __init__(self, space: TuningSpace, budget: int = 50, seed: int = 0):
        super().__init__(space, budget)
        self.rng = np.random.default_rng(seed)

    def tune(self, objective: Objective) -> TuningResult:
        result = TuningResult(best_config={}, best_score=float("inf"), evaluations=0)
        for _ in range(self.budget):
            config = self.space.random_config(self.rng)
            self._record(result, config, objective(config))
        return result


class HillClimbTuner(_BaseTuner):
    """Greedy local search with random restarts on plateaus."""

    def __init__(self, space: TuningSpace, budget: int = 50, seed: int = 0):
        super().__init__(space, budget)
        self.rng = np.random.default_rng(seed)

    def tune(self, objective: Objective) -> TuningResult:
        result = TuningResult(best_config={}, best_score=float("inf"), evaluations=0)
        current = self.space.random_config(self.rng)
        current_score = objective(current)
        self._record(result, current, current_score)
        while result.evaluations < self.budget:
            improved = False
            for neighbor in self.space.neighbors(current):
                if result.evaluations >= self.budget:
                    break
                score = objective(neighbor)
                self._record(result, neighbor, score)
                if score < current_score:
                    current, current_score = neighbor, score
                    improved = True
                    break  # first-improvement hill climbing
            if not improved:
                if result.evaluations >= self.budget:
                    break
                current = self.space.random_config(self.rng)  # restart
                current_score = objective(current)
                self._record(result, current, current_score)
        return result


class AnnealingTuner(_BaseTuner):
    """Simulated annealing over the discrete space."""

    def __init__(
        self,
        space: TuningSpace,
        budget: int = 50,
        seed: int = 0,
        initial_temperature: float = 1.0,
    ):
        super().__init__(space, budget)
        self.rng = np.random.default_rng(seed)
        self.initial_temperature = initial_temperature

    def tune(self, objective: Objective) -> TuningResult:
        result = TuningResult(best_config={}, best_score=float("inf"), evaluations=0)
        current = self.space.random_config(self.rng)
        current_score = objective(current)
        self._record(result, current, current_score)
        scale = abs(current_score) or 1.0
        while result.evaluations < self.budget:
            temperature = self.initial_temperature * (
                1.0 - result.evaluations / self.budget
            )
            neighbors = self.space.neighbors(current)
            candidate = neighbors[int(self.rng.integers(len(neighbors)))]
            score = objective(candidate)
            self._record(result, candidate, score)
            delta = (score - current_score) / scale
            if delta < 0 or self.rng.random() < math.exp(
                -delta / max(temperature, 1e-6)
            ):
                current, current_score = candidate, score
        return result
