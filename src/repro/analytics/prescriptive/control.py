"""Control-loop primitives for prescriptive ODA.

The shared machinery of every prescriptive use case: a PID controller for
continuous knobs, a rate-limited setpoint manager (real plants cannot slew
water temperature instantly), and a generic periodic
:class:`ControlLoop` that wires a decision function to the simulator and
records every actuation in the trace — the paper's requirement that
prescriptive output either automates a knob or lands in front of a human.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import ControlError
from repro.simulation.engine import PeriodicHandle, Simulator
from repro.simulation.trace import TraceLog

__all__ = ["PidController", "SetpointManager", "ControlLoop", "ControlAction"]


class PidController:
    """Textbook PID with output clamping and anti-windup.

    ``update(error, dt)`` returns the control output.  Integral windup is
    prevented by freezing integration while the output is saturated.
    """

    def __init__(
        self,
        kp: float,
        ki: float = 0.0,
        kd: float = 0.0,
        out_min: float = float("-inf"),
        out_max: float = float("inf"),
    ):
        if out_min >= out_max:
            raise ControlError("out_min must be < out_max")
        self.kp, self.ki, self.kd = kp, ki, kd
        self.out_min, self.out_max = out_min, out_max
        self._integral = 0.0
        self._last_error: Optional[float] = None

    def reset(self) -> None:
        self._integral = 0.0
        self._last_error = None

    def update(self, error: float, dt: float) -> float:
        if dt <= 0:
            raise ControlError("dt must be positive")
        derivative = 0.0 if self._last_error is None else (error - self._last_error) / dt
        self._last_error = error
        unsaturated = (
            self.kp * error + self.ki * (self._integral + error * dt) + self.kd * derivative
        )
        if self.out_min < unsaturated < self.out_max:
            self._integral += error * dt  # integrate only when unsaturated
        return min(max(unsaturated, self.out_min), self.out_max)


class SetpointManager:
    """Rate-limited setpoint actuation.

    Cooling machinery tolerates limited slew rates; the manager clamps each
    request to ``max_step`` per actuation and to the [lo, hi] range, and
    applies it through the provided actuator callable.
    """

    def __init__(
        self,
        actuator: Callable[[float], None],
        initial: float,
        lo: float,
        hi: float,
        max_step: float,
    ):
        if not lo <= initial <= hi:
            raise ControlError(f"initial {initial} outside [{lo}, {hi}]")
        self.actuator = actuator
        self.current = initial
        self.lo, self.hi = lo, hi
        self.max_step = max_step
        self.actuations = 0

    def request(self, target: float) -> float:
        """Move toward ``target``; returns the value actually applied.

        The actuator call happens *before* any state is committed: when the
        plant rejects the actuation (the actuator raises), ``current`` and
        ``actuations`` are left untouched, so the manager's view of the
        plant never desyncs from the plant itself.
        """
        clamped = min(max(target, self.lo), self.hi)
        step = min(max(clamped - self.current, -self.max_step), self.max_step)
        if step == 0.0:
            return self.current
        proposed = self.current + step
        self.actuator(proposed)  # may raise: state commits only on success
        self.current = proposed
        self.actuations += 1
        return self.current


@dataclass(frozen=True)
class ControlAction:
    """Record of one actuation decision."""

    time: float
    controller: str
    knob: str
    value: float
    reason: str = ""


class ControlLoop:
    """Periodic decision loop with trace-backed audit log.

    ``decide(now) -> list[ControlAction] | None`` is called every period;
    returned actions are assumed already applied by the decision function
    and are recorded for auditing.  ``recommend_only`` turns the loop into
    the human-in-the-loop variant: decisions are logged but the decision
    function is told not to actuate.
    """

    def __init__(
        self,
        name: str,
        decide: Callable[[float, bool], Optional[List[ControlAction]]],
        period: float,
        recommend_only: bool = False,
    ):
        if period <= 0:
            raise ControlError("period must be positive")
        self.name = name
        self.decide = decide
        self.period = period
        self.recommend_only = recommend_only
        self.actions: List[ControlAction] = []
        self.trace: Optional[TraceLog] = None
        self._handle: Optional[PeriodicHandle] = None
        self._applied: List[ControlAction] = []

    def attach(self, sim: Simulator, trace: Optional[TraceLog] = None) -> None:
        self.trace = trace
        self._handle = sim.schedule_periodic(
            self.period, lambda s: self.step(s.now),
            start_delay=self.period, label=f"control:{self.name}", priority=6,
        )

    def detach(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def record_applied(self, action: ControlAction) -> ControlAction:
        """Register an actuation the decision function has *already applied*.

        Decision functions that actuate mid-decide should call this right
        after each actuation: if the rest of ``decide()`` then fails, the
        audit log and trace still reflect everything that touched the plant
        (see :meth:`step`).  Actions both registered here and returned from
        ``decide()`` are logged once.
        """
        self._applied.append(action)
        return action

    def _log(self, now: float, action: ControlAction, partial: bool = False) -> None:
        self.actions.append(action)
        if self.trace is not None:
            detail = dict(
                knob=action.knob, value=action.value, reason=action.reason,
                recommend_only=self.recommend_only,
            )
            if partial:
                detail["partial"] = True
            self.trace.emit(now, f"control.{self.name}", "control_action", **detail)

    def step(self, now: float) -> List[ControlAction]:
        self._applied.clear()
        try:
            actions = self.decide(now, self.recommend_only) or []
        except Exception:
            # The decision failed mid-way: anything actually applied before
            # the failure (registered via record_applied) must still reach
            # the audit log and trace before the error propagates.
            for action in self._applied:
                self._log(now, action, partial=True)
            self._applied.clear()
            raise
        merged = list(actions)
        for action in self._applied:
            if action not in merged:
                merged.append(action)
        self._applied.clear()
        for action in merged:
            self._log(now, action)
        return merged
