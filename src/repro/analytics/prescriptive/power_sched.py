"""Power- and KPI-aware scheduling policies.

Table I's software prescriptive cell [21]-[23]: scheduling decisions that
respect a facility power budget and exploit predicted job power.  The
policies implement the software pillar's
:class:`~repro.software.policies.SchedulingPolicy` protocol, layering
telemetry-derived estimates on top of the EASY backfill baseline — the
paper's layering of prescriptive ODA over existing system software.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.software.jobs import Job
from repro.software.policies import (
    Allocation,
    EasyBackfillPolicy,
    SchedulingContext,
    estimate_job_power,
)

__all__ = ["PowerAwarePolicy", "EnergyBudgetPolicy"]

PowerEstimator = Callable[[Job, "SchedulingContext"], float]


class PowerAwarePolicy(EasyBackfillPolicy):
    """EASY backfill under an instantaneous IT power cap.

    A job may only start if (current IT power + predicted job power) stays
    under ``power_cap_w``.  Jobs denied for power are skipped rather than
    blocking (power, unlike nodes, frees itself as load phases change, so
    strict FCFS blocking on power starves badly).
    """

    name = "power_aware"

    def __init__(
        self,
        power_cap_w: float,
        estimator: Optional[PowerEstimator] = None,
    ):
        self.power_cap_w = power_cap_w
        self.estimator = estimator or (
            lambda job, ctx: estimate_job_power(job, ctx.system)
        )
        self.denied_for_power = 0

    def select(self, ctx: SchedulingContext) -> List[Allocation]:
        budget = self.power_cap_w - ctx.system.it_power_w
        allocations: List[Allocation] = []
        for allocation in super().select(ctx):
            predicted = self.estimator(allocation.job, ctx)
            if predicted <= budget:
                allocations.append(allocation)
                budget -= predicted
            else:
                self.denied_for_power += 1
        return allocations


class EnergyBudgetPolicy(EasyBackfillPolicy):
    """Scheduling under a periodic energy budget (kWh per accounting window).

    Tracks energy spent in the current window via the caller-provided
    meter; when the remaining budget divided by the remaining window time
    implies a power ceiling, that ceiling gates job starts.  This is the
    "energy budget" operating constraint the paper lists for system-level
    ODA schedulers.
    """

    name = "energy_budget"

    def __init__(
        self,
        budget_j: float,
        window_s: float,
        energy_meter: Callable[[], float],
        estimator: Optional[PowerEstimator] = None,
    ):
        self.budget_j = budget_j
        self.window_s = window_s
        self.energy_meter = energy_meter
        self.estimator = estimator or (
            lambda job, ctx: estimate_job_power(job, ctx.system)
        )
        self._window_start_energy = energy_meter()
        self._window_start_time: Optional[float] = None
        self.denied_for_energy = 0

    def _power_ceiling(self, now: float) -> float:
        if self._window_start_time is None:
            self._window_start_time = now
        elapsed = now - self._window_start_time
        if elapsed >= self.window_s:  # roll the accounting window
            self._window_start_time = now
            self._window_start_energy = self.energy_meter()
            elapsed = 0.0
        spent = self.energy_meter() - self._window_start_energy
        remaining_j = max(self.budget_j - spent, 0.0)
        remaining_s = max(self.window_s - elapsed, 1.0)
        return remaining_j / remaining_s

    def select(self, ctx: SchedulingContext) -> List[Allocation]:
        ceiling = self._power_ceiling(ctx.now)
        headroom = ceiling - ctx.system.it_power_w
        allocations: List[Allocation] = []
        for allocation in super().select(ctx):
            predicted = self.estimator(allocation.job, ctx)
            if predicted <= headroom:
                allocations.append(allocation)
                headroom -= predicted
            else:
                self.denied_for_energy += 1
        return allocations
