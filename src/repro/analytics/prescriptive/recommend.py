"""Code-improvement recommendations (Zhang et al. [44] style).

Table I's application prescriptive cell: turn per-region instrumentation
and roofline placement into concrete advice for users — the
recommendation-based (human-actuated) end of prescriptive ODA.

The rule engine inspects instrumented regions and emits prioritized
:class:`Recommendation` records; rules are small, documented predicates so
sites can extend the set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.analytics.descriptive.roofline import RooflineModel
from repro.apps.instrumentation import RegionProfile

__all__ = ["Recommendation", "CodeAdvisor"]


@dataclass(frozen=True)
class Recommendation:
    """One actionable code-improvement suggestion."""

    region: str
    priority: float  # impact estimate in [0, 1]: time share x severity
    title: str
    detail: str


Rule = Callable[[RegionProfile, RooflineModel], Optional[Recommendation]]


def _rule_memory_bound(region: RegionProfile, roofline: RooflineModel) -> Optional[Recommendation]:
    point = roofline.place(region)
    if point.memory_bound and region.time_share > 0.1:
        return Recommendation(
            region=region.region,
            priority=region.time_share * 0.9,
            title="memory-bandwidth bound: improve data locality",
            detail=(
                f"arithmetic intensity {region.arithmetic_intensity:.2f} FLOP/B is "
                f"below the machine balance {roofline.ridge_intensity:.2f}; consider "
                "cache blocking, structure-of-arrays layouts, or kernel fusion"
            ),
        )
    return None


def _rule_low_efficiency(region: RegionProfile, roofline: RooflineModel) -> Optional[Recommendation]:
    point = roofline.place(region)
    if not point.memory_bound and point.efficiency < 0.5 and region.time_share > 0.1:
        return Recommendation(
            region=region.region,
            priority=region.time_share * (1.0 - point.efficiency),
            title="compute-bound but far from peak: vectorize",
            detail=(
                f"achieving {point.achieved_gflops:.0f} of "
                f"{point.attainable_gflops:.0f} attainable GFLOP/s "
                f"({point.efficiency:.0%}); check vectorization reports and "
                "instruction mix"
            ),
        )
    return None


def _rule_io_dominant(region: RegionProfile, roofline: RooflineModel) -> Optional[Recommendation]:
    # Regions with negligible compute and little frequency sensitivity are
    # I/O (or idle) phases; their memory traffic is transfer, not compute.
    if (
        region.gflops < 0.05 * roofline.peak_gflops
        and region.compute_fraction <= 0.2
        and region.time_share > 0.15
    ):
        return Recommendation(
            region=region.region,
            priority=region.time_share,
            title="large non-compute phase: overlap or reduce I/O",
            detail=(
                f"{region.time_share:.0%} of runtime spent with near-zero compute; "
                "consider asynchronous/buffered I/O, burst buffers, or less "
                "frequent checkpointing"
            ),
        )
    return None


def _rule_frequency_insensitive(region: RegionProfile, roofline: RooflineModel) -> Optional[Recommendation]:
    if region.compute_fraction < 0.3 and region.time_share > 0.25:
        return Recommendation(
            region=region.region,
            priority=region.time_share * 0.5,
            title="frequency-insensitive region: request DVFS hints",
            detail=(
                f"progress scales only {region.compute_fraction:.0%} with clock; "
                "annotating this region lets the runtime clock down for "
                "near-free energy savings"
            ),
        )
    return None


_DEFAULT_RULES: Sequence[Rule] = (
    _rule_memory_bound,
    _rule_low_efficiency,
    _rule_io_dominant,
    _rule_frequency_insensitive,
)


class CodeAdvisor:
    """Rule-driven recommendation engine over instrumented regions."""

    def __init__(
        self,
        roofline: Optional[RooflineModel] = None,
        rules: Optional[Sequence[Rule]] = None,
    ):
        self.roofline = roofline or RooflineModel()
        self.rules = list(rules) if rules is not None else list(_DEFAULT_RULES)

    def add_rule(self, rule: Rule) -> None:
        """Extend the engine with a site-specific rule."""
        self.rules.append(rule)

    def advise(self, regions: Sequence[RegionProfile]) -> List[Recommendation]:
        """All triggered recommendations, highest priority first."""
        out: List[Recommendation] = []
        for region in regions:
            for rule in self.rules:
                recommendation = rule(region, self.roofline)
                if recommendation is not None:
                    out.append(recommendation)
        out.sort(key=lambda r: -r.priority)
        return out

    def report(self, regions: Sequence[RegionProfile]) -> str:
        """Human-readable advisory report."""
        recommendations = self.advise(regions)
        if not recommendations:
            return "no recommendations: all regions look healthy"
        lines = []
        for i, rec in enumerate(recommendations, 1):
            lines.append(f"{i}. [{rec.priority:.2f}] {rec.region}: {rec.title}")
            lines.append(f"   {rec.detail}")
        return "\n".join(lines)
