"""DVFS governors: reactive and proactive CPU-frequency tuning.

Table I's hardware prescriptive cell ("CPU frequency tuning" — GEOPM [11],
EAR [24], SuperMUC EAS [40]).  Governors plug into the software pillar's
:class:`~repro.software.runtime.NodeRuntime`:

* :class:`ReactiveEnergyGovernor` — classic phase-aware policy: clock down
  when the running phase is memory/IO/network-bound (frequency barely
  affects progress), clock up for compute-bound phases.
* :class:`ProactiveEnergyGovernor` — the same policy augmented with a
  *phase predictor* learned from each application's history, so the
  governor switches frequency at phase boundaries *before* the new phase's
  counters show up.  This is the paper's Section V-A argument made
  runnable: prediction upgrades a reactive controller into a proactive one.
* :class:`PowerCapGovernor` — fleet-level cap: clamps frequencies so
  aggregate IT power respects a budget (the GEOPM power-balancing role).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cluster.node import ComputeNode
from repro.cluster.system import HPCSystem

__all__ = [
    "ReactiveEnergyGovernor",
    "ProactiveEnergyGovernor",
    "PowerCapGovernor",
    "PhasePredictor",
]


def _ladder_step(node: ComputeNode, target_ratio: float) -> float:
    """Lowest ladder frequency with ratio >= target (or the max level)."""
    ladder = sorted(node.cpu.freq_levels_ghz)
    for level in ladder:
        if level / node.cpu.nominal_ghz >= target_ratio:
            return level
    return ladder[-1]


class ReactiveEnergyGovernor:
    """Counter-driven frequency policy.

    Decision rule: the observable ``compute_fraction`` proxy is the IPC
    counter relative to its compute-bound ceiling; below
    ``memory_bound_ipc`` the phase is treated as memory-bound and clocked
    at ``low_ghz``; above ``compute_bound_ipc`` it gets full frequency;
    in between, the mid level.
    """

    def __init__(
        self,
        low_ghz: float = 1.6,
        mid_ghz: float = 2.0,
        memory_bound_ipc: float = 0.8,
        compute_bound_ipc: float = 1.6,
    ):
        self.low_ghz = low_ghz
        self.mid_ghz = mid_ghz
        self.memory_bound_ipc = memory_bound_ipc
        self.compute_bound_ipc = compute_bound_ipc

    def decide(self, node: ComputeNode, counters: Dict[str, float], now: float) -> Optional[float]:
        if counters.get("cpu_util", 0.0) < 0.05:
            return self.low_ghz  # idle nodes park at the lowest level
        # IPC is frequency-scaled in the substrate; normalize it back.
        freq_ratio = node.frequency_ghz / node.cpu.nominal_ghz
        ipc = counters.get("ipc", 0.0) / freq_ratio if freq_ratio > 0 else 0.0
        if ipc <= self.memory_bound_ipc:
            return self.low_ghz
        if ipc >= self.compute_bound_ipc:
            return node.cpu.nominal_ghz
        return self.mid_ghz


class PhasePredictor:
    """Learns each application's phase cycle from observed transitions.

    Tracks, per (profile, current phase), the phase that followed and how
    long the current phase lasted; predicts the upcoming phase's
    compute-boundedness near the expected boundary.
    """

    def __init__(self) -> None:
        # (profile, phase) -> (next_phase_compute_fraction, mean_duration)
        self._transitions: Dict[Tuple[str, str], Tuple[float, float]] = {}
        self._active: Dict[str, Tuple[str, float]] = {}  # node -> (phase key, entered_at)

    def observe(
        self, node_name: str, profile: str, phase_name: str,
        compute_fraction: float, now: float,
    ) -> None:
        """Feed the currently-running phase of a node."""
        key = f"{profile}|{phase_name}"
        active = self._active.get(node_name)
        if active is None or active[0] != key:
            if active is not None:
                prev_key, entered = active
                duration = now - entered
                old = self._transitions.get(prev_key)
                mean = duration if old is None else 0.7 * old[1] + 0.3 * duration
                self._transitions[prev_key] = (compute_fraction, mean)
            self._active[node_name] = (key, now)

    def predict_next(
        self, node_name: str, now: float, lookahead: float
    ) -> Optional[float]:
        """Compute-fraction of the *next* phase if a boundary is imminent."""
        active = self._active.get(node_name)
        if active is None:
            return None
        key, entered = active
        learned = self._transitions.get(key)
        if learned is None:
            return None
        next_fraction, mean_duration = learned
        if now - entered + lookahead >= mean_duration:
            return next_fraction
        return None


class ProactiveEnergyGovernor(ReactiveEnergyGovernor):
    """Reactive policy + learned phase-boundary anticipation.

    Near a predicted phase boundary the governor sets the frequency the
    *next* phase wants, eliminating the reactive policy's one-period lag —
    measurably better energy-delay product in the proactive-vs-reactive
    benchmark (experiment D1).
    """

    def __init__(self, predictor: Optional[PhasePredictor] = None, lookahead_s: float = 120.0, **kwargs):
        super().__init__(**kwargs)
        self.predictor = predictor or PhasePredictor()
        self.lookahead_s = lookahead_s

    def decide(self, node: ComputeNode, counters: Dict[str, float], now: float) -> Optional[float]:
        # Learn from what the node is actually running (phase identity comes
        # from the assigned load's compute_fraction signature).
        if node.job_id is not None and counters.get("cpu_util", 0.0) > 0.05:
            self.predictor.observe(
                node.name,
                profile=node.job_id.split("|")[0],
                phase_name=f"cf={node.load.compute_fraction:.2f}",
                compute_fraction=node.load.compute_fraction,
                now=now,
            )
            predicted = self.predictor.predict_next(node.name, now, self.lookahead_s)
            if predicted is not None and predicted >= 0.7:
                # Pre-raise ahead of a predicted compute phase: the reactive
                # policy would otherwise run its first period at low clock.
                # Down-clocking stays reactive — anticipating a memory phase
                # that arrives late would cost progress, so the asymmetric
                # rule keeps the proactive governor strictly no-slower.
                return node.cpu.nominal_ghz
        return super().decide(node, counters, now)


class PowerCapGovernor:
    """Fleet power capping: clamp frequencies to respect an IT budget.

    When aggregate IT power exceeds the cap, busy nodes are stepped down
    one ladder level per pass (highest-power nodes first); when there is
    ample headroom, nodes are stepped back up.  This is the prescriptive
    power-management role of the PowerStack effort [41].
    """

    def __init__(self, system: HPCSystem, cap_w: float, headroom: float = 0.95):
        self.system = system
        self.cap_w = cap_w
        self.headroom = headroom

    def decide(self, node: ComputeNode, counters: Dict[str, float], now: float) -> Optional[float]:
        total = self.system.it_power_w
        ladder = sorted(node.cpu.freq_levels_ghz)
        idx = ladder.index(node.frequency_ghz)
        if total > self.cap_w:
            # Over budget: jump proportionally rather than one step per
            # pass — dynamic power scales with f^3, so the frequency that
            # meets the cap is current * (cap/total)^(1/3).  Idle nodes
            # drop too, which also softens the next job-start transient.
            target = node.frequency_ghz * (self.cap_w / total) ** (1.0 / 3.0)
            candidates = [f for f in ladder if f <= target]
            chosen = candidates[-1] if candidates else ladder[0]
            return chosen if chosen < node.frequency_ghz else (
                ladder[idx - 1] if idx > 0 else None
            )
        if total < self.cap_w * self.headroom and idx < len(ladder) - 1:
            # Recover headroom, but never boost past nominal on the cap
            # governor's own initiative — turbo levels stay an explicit
            # operator decision.  Guard against bang-bang: all busy nodes
            # step together on the same fleet reading, so only step up if
            # the *projected* fleet power (cube-law estimate over the busy
            # fleet) still clears the cap — otherwise next period's reading
            # would force everyone straight back down.
            next_level = ladder[idx + 1]
            if next_level > node.cpu.nominal_ghz:
                return None
            busy = [
                n for n in self.system.up_nodes()
                if n.load.cpu_util > 0.05
            ]
            projected = total
            for peer in busy:
                ratio_now = peer.frequency_ghz / peer.cpu.nominal_ghz
                peer_idx = ladder.index(peer.frequency_ghz)
                if peer_idx >= len(ladder) - 1:
                    continue
                peer_next = min(ladder[peer_idx + 1], peer.cpu.nominal_ghz)
                ratio_next = peer_next / peer.cpu.nominal_ghz
                dynamic = peer.max_dynamic_w * peer.load.cpu_util * ratio_now**3
                projected += dynamic * ((ratio_next / ratio_now) ** 3 - 1.0)
            if projected < self.cap_w * self.headroom:
                return next_level
        return None
