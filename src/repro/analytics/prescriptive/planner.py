"""Plan-based scheduling (Zheng et al. [43]).

Instead of deciding greedily at each tick, build an explicit execution
plan — start times and placements for every queued job — by simulating
node availability forward under predicted runtimes, then execute the plan
while it remains valid.  The planner quantifies its own quality (makespan,
predicted utilization) so sites can compare plans before committing, which
is the core argument for plan-based over queue-based scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.software.jobs import Job
from repro.software.policies import Allocation, SchedulingContext, SchedulingPolicy

__all__ = ["PlannedStart", "ExecutionPlan", "PlanBasedPolicy", "build_plan"]

RuntimePredictor = Callable[[Job], float]


@dataclass(frozen=True)
class PlannedStart:
    """One planned job start."""

    job_id: str
    start_time: float
    node_names: Tuple[str, ...]
    predicted_runtime: float


@dataclass
class ExecutionPlan:
    """A complete forward plan over the current queue."""

    created_at: float
    starts: List[PlannedStart] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Predicted completion time of the last planned job."""
        if not self.starts:
            return self.created_at
        return max(s.start_time + s.predicted_runtime for s in self.starts)

    def starts_due(self, now: float, pending_ids: set) -> List[PlannedStart]:
        """Planned starts that are due now and still pending."""
        return [
            s for s in self.starts if s.start_time <= now and s.job_id in pending_ids
        ]

    def predicted_utilization(self, total_nodes: int) -> float:
        """Node-time filled by the plan / node-time available to makespan."""
        horizon = self.makespan - self.created_at
        if horizon <= 0 or total_nodes == 0:
            return 0.0
        busy = sum(len(s.node_names) * s.predicted_runtime for s in self.starts)
        return min(busy / (horizon * total_nodes), 1.0)


def build_plan(
    ctx: SchedulingContext,
    predictor: RuntimePredictor,
) -> ExecutionPlan:
    """Forward-simulate node releases to plan every queued job.

    Nodes are modelled as a free-time vector: each free node is available
    now; each running/planned job's nodes free up at its predicted end.
    Jobs are planned in queue order onto the earliest instant enough nodes
    are simultaneously free (conservative list scheduling).
    """
    free_at: Dict[str, float] = {name: ctx.now for name in ctx.free_nodes}
    for job in ctx.running:
        if job.start_time is None:
            continue
        release = ctx.now + max(
            predictor(job) - (ctx.now - job.start_time), 60.0
        )
        for name in job.assigned_nodes:
            free_at[name] = release

    plan = ExecutionPlan(created_at=ctx.now)
    for job in ctx.pending:
        need = job.request.nodes
        if need > len(free_at):
            continue  # can never fit on this machine's healthy nodes
        # The job starts when the need-th earliest node frees up.
        by_time = sorted(free_at.items(), key=lambda item: (item[1], item[0]))
        chosen = by_time[:need]
        start_time = max(t for _, t in chosen)
        runtime = predictor(job)
        for name, _ in chosen:
            free_at[name] = start_time + runtime
        plan.starts.append(
            PlannedStart(
                job_id=job.job_id,
                start_time=start_time,
                node_names=tuple(sorted(name for name, _ in chosen)),
                predicted_runtime=runtime,
            )
        )
    return plan


class PlanBasedPolicy(SchedulingPolicy):
    """Scheduling policy that executes a periodically-rebuilt plan.

    The plan is rebuilt when stale (every ``replan_interval`` seconds) or
    when the queue contains jobs the current plan does not know.  At each
    tick the policy starts exactly the planned jobs that are due, on their
    planned nodes when still available (falling back to first-fit if the
    planned nodes were taken by repairs/failures).
    """

    name = "plan_based"

    def __init__(self, predictor: RuntimePredictor, replan_interval: float = 900.0):
        self.predictor = predictor
        self.replan_interval = replan_interval
        self.plan: Optional[ExecutionPlan] = None
        self.replans = 0

    def _needs_replan(self, ctx: SchedulingContext) -> bool:
        if self.plan is None:
            return True
        if ctx.now - self.plan.created_at >= self.replan_interval:
            return True
        planned_ids = {s.job_id for s in self.plan.starts}
        return any(job.job_id not in planned_ids for job in ctx.pending)

    def select(self, ctx: SchedulingContext) -> List[Allocation]:
        if self._needs_replan(ctx):
            self.plan = build_plan(ctx, self.predictor)
            self.replans += 1
        pending_by_id = {job.job_id: job for job in ctx.pending}
        free = set(ctx.free_nodes)
        allocations: List[Allocation] = []
        for start in self.plan.starts_due(ctx.now, set(pending_by_id)):
            job = pending_by_id[start.job_id]
            if set(start.node_names) <= free:
                nodes = start.node_names
            else:
                available = sorted(free)
                if len(available) < job.request.nodes:
                    continue
                nodes = tuple(available[: job.request.nodes])
            allocations.append(Allocation(job, nodes))
            free -= set(nodes)
        return allocations
