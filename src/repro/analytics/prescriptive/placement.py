"""Cooling- and topology-aware job placement.

Two Table I prescriptive use cases:

* **Cool job allocation** (Bash & Forman [22]): place jobs on the nodes
  with the best cooling margin (coolest inlets), so the same work produces
  less fan/leakage power and the plant sees a flatter thermal profile.
* **Intelligent placement of tasks** (Li et al. [42]): keep a job's nodes
  topologically compact (same leaf switch) to minimize cross-spine traffic
  and the network contention it causes.

Both are :class:`~repro.software.policies.SchedulingPolicy` subclasses
overriding only the placement hook, so they compose with any selection
logic.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.software.jobs import Job
from repro.software.policies import EasyBackfillPolicy, SchedulingContext

__all__ = ["CoolingAwarePolicy", "TopologyAwarePolicy"]


class CoolingAwarePolicy(EasyBackfillPolicy):
    """EASY backfill placing jobs on the coolest available nodes."""

    name = "cooling_aware"

    def place(
        self, job: Job, free_nodes: Sequence[str], ctx: SchedulingContext
    ) -> Tuple[str, ...]:
        ranked = sorted(
            free_nodes,
            key=lambda name: (ctx.system.node(name).inlet_temp_c, name),
        )
        return tuple(ranked[: job.request.nodes])


class TopologyAwarePolicy(EasyBackfillPolicy):
    """EASY backfill packing each job under as few leaf switches as possible.

    Greedy: order leaves by how many of the job's nodes they can host, fill
    the fullest-fitting leaves first.  Jobs that fit entirely under one
    leaf generate zero spine traffic in the fabric model.
    """

    name = "topology_aware"

    def place(
        self, job: Job, free_nodes: Sequence[str], ctx: SchedulingContext
    ) -> Tuple[str, ...]:
        fabric = ctx.system.fabric
        by_leaf: dict = {}
        for name in free_nodes:
            by_leaf.setdefault(fabric.leaf_of(name), []).append(name)
        # Fullest leaves first; stable by leaf name.
        leaves = sorted(by_leaf.items(), key=lambda item: (-len(item[1]), item[0]))
        chosen: List[str] = []
        need = job.request.nodes
        for _, members in leaves:
            take = min(len(members), need - len(chosen))
            chosen.extend(sorted(members)[:take])
            if len(chosen) == need:
                break
        return tuple(chosen)
