"""Prescriptive cooling control: setpoint optimization and mode switching.

Table I's top-left cell: "switching between types of cooling" (Jiang et
al. [12]) and "tuning of cooling machinery" (Conficoni et al. [18]).

Two controllers:

* :class:`SetpointOptimizer` — uses the learned
  :class:`~repro.analytics.predictive.cooling.CoolingPerformanceModel` to
  pick the supply setpoint minimizing predicted cooling power, subject to a
  node-inlet ceiling (the thermal-safety constraint that couples back to
  the hardware pillar).  Demonstrates the diagnostic/predictive →
  prescriptive layering of Section V-A.
* :class:`ModeSwitcher` — rule-based technology switching on weather
  feasibility margins with hysteresis, for sites without a learned model.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analytics.predictive.cooling import CoolingPerformanceModel
from repro.analytics.prescriptive.control import ControlAction, ControlLoop, SetpointManager
from repro.facility.cooling import CoolingLoop, CoolingMode
from repro.facility.facility import Facility

__all__ = ["SetpointOptimizer", "ModeSwitcher"]


class SetpointOptimizer:
    """Model-driven supply-setpoint optimizer for one cooling loop.

    Every period, sweeps candidate setpoints through the performance model
    under current conditions and requests the cheapest one that keeps the
    implied node inlet below ``max_inlet_c``.
    """

    def __init__(
        self,
        facility: Facility,
        loop: CoolingLoop,
        model: CoolingPerformanceModel,
        period: float = 1800.0,
        max_inlet_c: float = 32.0,
        candidates: Optional[np.ndarray] = None,
        max_step_c: float = 2.0,
        rack_offset_c: float = 1.5,
        recommend_only: bool = False,
    ):
        self.facility = facility
        self.loop = loop
        self.model = model
        self.max_inlet_c = max_inlet_c
        self.candidates = (
            candidates
            if candidates is not None
            else np.arange(loop.min_setpoint_c, min(loop.max_setpoint_c, 40.0) + 0.5, 1.0)
        )
        self.rack_offset_c = rack_offset_c
        self.manager = SetpointManager(
            actuator=loop.set_setpoint,
            initial=loop.supply_setpoint_c,
            lo=loop.min_setpoint_c,
            hi=loop.max_setpoint_c,
            max_step=max_step_c,
        )
        self.control_loop = ControlLoop(
            name=f"setpoint_opt:{loop.name}",
            decide=self._decide,
            period=period,
            recommend_only=recommend_only,
        )

    # ------------------------------------------------------------------
    def best_setpoint(self) -> float:
        """The setpoint the model currently considers optimal."""
        weather = self.facility.current_weather
        feasible = self.candidates[
            self.candidates + self.rack_offset_c <= self.max_inlet_c
        ]
        if feasible.size == 0:
            return float(self.candidates.min())
        predicted = self.model.setpoint_sensitivity(
            self.loop.heat_load_w, weather.drybulb_c, weather.wetbulb_c, feasible
        )
        return float(feasible[int(np.argmin(predicted))])

    def _decide(self, now: float, recommend_only: bool) -> List[ControlAction]:
        target = self.best_setpoint()
        if recommend_only:
            return [
                ControlAction(
                    time=now, controller=self.control_loop.name,
                    knob="supply_setpoint", value=target,
                    reason="recommendation (not applied)",
                )
            ]
        applied = self.manager.request(target)
        if applied == self.loop.supply_setpoint_c and abs(applied - target) < 1e-9:
            reason = "optimal under current conditions"
        else:
            reason = f"slewing toward {target:.1f}"
        return [
            ControlAction(
                time=now, controller=self.control_loop.name,
                knob="supply_setpoint", value=applied, reason=reason,
            )
        ]


class ModeSwitcher:
    """Hysteretic cooling-technology switcher (Jiang et al. [12] style).

    Switches the loop to free cooling / tower when the weather margin is
    comfortable, and back to AUTO (chiller-backed) when the margin erodes.
    ``margin_c`` sets the hysteresis half-width so the plant does not flap
    around the feasibility boundary.
    """

    def __init__(
        self,
        facility: Facility,
        loop: CoolingLoop,
        period: float = 900.0,
        margin_c: float = 2.0,
    ):
        self.facility = facility
        self.loop = loop
        self.margin_c = margin_c
        self.control_loop = ControlLoop(
            name=f"mode_switch:{loop.name}", decide=self._decide, period=period
        )

    def _decide(self, now: float, recommend_only: bool) -> List[ControlAction]:
        weather = self.facility.current_weather
        setpoint = self.loop.supply_setpoint_c
        free_margin = setpoint - self.loop.dry_cooler.supply_temp_c(weather.drybulb_c)
        tower_margin = setpoint - self.loop.tower.supply_temp_c(weather.wetbulb_c)

        current = self.loop.mode
        target = current
        if free_margin > self.margin_c:
            target = CoolingMode.FREE
        elif tower_margin > self.margin_c:
            target = CoolingMode.TOWER
        elif free_margin < 0 and tower_margin < 0:
            target = CoolingMode.CHILLER
        # Hysteresis: leave an economized mode only when its margin is gone.
        if current is CoolingMode.FREE and free_margin > 0:
            target = CoolingMode.FREE
        elif current is CoolingMode.TOWER and tower_margin > 0 and target is not CoolingMode.FREE:
            target = CoolingMode.TOWER

        if target is current:
            return []
        if not recommend_only:
            self.loop.set_mode(target)
        return [
            ControlAction(
                time=now, controller=self.control_loop.name,
                knob="cooling_mode", value=float(
                    [CoolingMode.CHILLER, CoolingMode.TOWER, CoolingMode.FREE, CoolingMode.AUTO].index(target)
                ),
                reason=f"{current.value} -> {target.value} "
                       f"(free margin {free_margin:.1f}C, tower margin {tower_margin:.1f}C)",
            )
        ]
