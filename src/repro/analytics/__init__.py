"""Analytics layer: the four types of data analytics.

One subpackage per type of the paper's staged model:

* :mod:`repro.analytics.descriptive` — "what happened?"
* :mod:`repro.analytics.diagnostic` — "why did it happen?"
* :mod:`repro.analytics.predictive` — "what will happen?"
* :mod:`repro.analytics.prescriptive` — "what should be done?"

plus :mod:`repro.analytics.common` with shared feature/scaling utilities.
"""

from repro.analytics import descriptive, diagnostic, predictive, prescriptive
from repro.analytics.common import (
    FEATURE_NAMES,
    StandardScaler,
    lag_matrix,
    sliding_windows,
    summary_features,
    train_test_split_time,
)

__all__ = [
    "descriptive",
    "diagnostic",
    "predictive",
    "prescriptive",
    "FEATURE_NAMES",
    "StandardScaler",
    "lag_matrix",
    "sliding_windows",
    "summary_features",
    "train_test_split_time",
]
